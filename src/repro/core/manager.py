"""The IPA manager: page materialization policy (paper Section 6.2).

This is the component that replaces the storage manager's write path:

* **Load** — read the raw flash image of a page, decode the programmed
  delta records from its tail, apply them in forward order, and hand
  the storage layer an up-to-date page plus the count of used slots
  (the paper's :math:`N_E`).
* **Flush** — classify the page's tracked byte changes into body and
  metadata, check the [N x M] budget against the remaining slots, and
  either encode delta records and issue one ``write_delta``, or fall
  back to a conventional out-of-place page write (resetting the delta
  area so the new flash home starts with all slots erased).

The manager is deliberately storage-agnostic: it works on any "frame"
object exposing ``lpn``, ``slots_used``, ``ipa_disabled`` and a ``page``
with the :class:`~repro.storage.page_layout.SlottedPage` tracking
surface, so tests can drive it with lightweight stand-ins.
"""

from __future__ import annotations

from typing import Callable

from ..errors import DeltaWriteError, IPAError
from ..flash.ecc import CODE_SIZE, EccSegment, SegmentedEcc
from ..ftl.device import FlashDevice
from . import delta
from .scheme import NxMScheme, SCHEME_OFF
from .stats import IPAStats

#: Observer of flush decisions, for workload analysis:
#: (lpn, kind, net_body_bytes, gross_bytes, overflowed)
FlushObserver = Callable[[int, str, int, int, bool], None]

#: OOB commit mark: programmed over an erased (0xFF) mark byte after a
#: delta record's data lands.  Any value with cleared bits works — a
#: torn mark program still clears *some* bit, so "mark != 0xFF" is the
#: commit test and it tolerates partial programming of the mark itself.
_MARK_BYTE = 0xA5


class IPAManager:
    """Decides, per flush, between In-Place Append and out-of-place write."""

    def __init__(
        self,
        device: FlashDevice,
        scheme: NxMScheme = SCHEME_OFF,
        ecc_enabled: bool = False,
        flush_observer: FlushObserver | None = None,
        page_checksum: bool = False,
        telemetry=None,
    ) -> None:
        self.device = device
        self.scheme = scheme
        self.ecc_enabled = ecc_enabled
        self.flush_observer = flush_observer
        #: InnoDB-style FIL checksum: stamp the page checksum on every
        #: flush (a tracked ~4-byte metadata change) and verify on load.
        self.page_checksum = page_checksum
        self.stats = IPAStats()
        #: Telemetry handle (``repro.telemetry.Telemetry``); ``None``
        #: keeps the flush path free of any event work.
        self.telemetry = telemetry
        if scheme.enabled:
            reserved = CODE_SIZE * (1 + scheme.n) if ecc_enabled else 0
            if reserved + scheme.n > device.oob_size:
                raise IPAError(
                    f"scheme {scheme} needs {scheme.n} OOB commit-mark bytes "
                    f"(+{reserved} ECC bytes) but the device OOB holds only "
                    f"{device.oob_size}"
                )
        self._ecc = self._build_ecc() if ecc_enabled else None

    def _build_ecc(self) -> SegmentedEcc:
        page_size = self.device.page_size
        scheme = self.scheme
        if not scheme.enabled:
            segments = [EccSegment(0, page_size)]
        else:
            segments = [EccSegment(0, scheme.area_offset(page_size))]
            for index in range(scheme.n):
                segments.append(
                    EccSegment(scheme.slot_offset(index, page_size), scheme.record_size)
                )
        return SegmentedEcc(segments, self.device.oob_size)

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------

    def load(self, lpn: int, now: float = 0.0) -> tuple[bytearray, int, float]:
        """Fetch a page: read raw image, verify ECC, apply delta records.

        Returns ``(up_to_date_image, slots_used, read_latency_us)``.
        The image's delta area is reset to the erased state: in the
        buffer it is scratch space, not content.

        Only slots covered by an OOB commit mark are decoded: a slot
        whose data landed but whose mark program never completed was
        torn by a power failure, and the write-data-then-mark ordering
        guarantees any marked slot's data is complete.  Erased slots
        *inside* the marked range are absorption gaps (a black-box
        device folded them into the body) and are skipped.

        Pages from non-IPA regions reserve no delta area (selective
        placement); their header says so and decoding is skipped.
        (Limitation: with ECC enabled in a mixed-region configuration,
        such pages are only covered by the body segment.)
        """
        from ..storage.page_layout import delta_area_size_of

        io = self.device.read(lpn, now)
        image = bytearray(io.data)
        has_area = delta_area_size_of(image) == self.scheme.area_size > 0
        oob: bytes | None = None
        marked: int | None = None
        if has_area:
            oob = self.device.read_oob(lpn)
            marked = self._count_marked(oob)
        if self._ecc is not None:
            used = 0
            if has_area:
                __, used = delta.decode_area(
                    self.scheme, image, len(image), max_slots=marked
                )
            if oob is None:
                oob = self.device.read_oob(lpn)
            self.stats.ecc_corrected_bits += self._ecc.verify(image, oob, 1 + used)
        slots_used = 0
        if has_area:
            pairs, slots_used = delta.decode_area(
                self.scheme, image, len(image), max_slots=marked
            )
            delta.apply_pairs(image, pairs)
            area = self.scheme.area_offset(len(image))
            image[area:] = b"\xff" * self.scheme.area_size
        return image, slots_used, io.latency_us

    def _count_marked(self, oob: bytes) -> int:
        """Number of committed slots: leading non-erased commit marks."""
        base = len(oob) - self.scheme.n
        marked = 0
        for index in range(self.scheme.n):
            if oob[base + index] == 0xFF:
                break
            marked += 1
        return marked

    # ------------------------------------------------------------------
    # Flush path
    # ------------------------------------------------------------------

    def plan_flush(self, frame) -> str:
        """Advisory flush classification: ``"skip"``, ``"ipa"`` or ``"oop"``.

        Mirrors :meth:`flush`'s decision chain without device I/O or
        frame mutation, so a scheduler can label a queued write-back
        command.  Advisory only: it runs before checksum stamping and
        never attempts the append, so the device may still force an
        out-of-place fallback at execution time.
        """
        page = frame.page
        mapped = self.device.is_mapped(frame.lpn)
        if mapped and not page.tracked and not page.track_overflowed and not frame.ipa_disabled:
            return "skip"
        if (
            self.scheme.enabled
            and mapped
            and page.delta_area_size == self.scheme.area_size
            and not page.track_overflowed
            and not frame.ipa_disabled
        ):
            body, meta = page.classify_tracked()
            if self.scheme.fits(len(body), len(meta), frame.slots_used):
                return "ipa"
        return "oop"

    def flush(self, frame, now: float = 0.0) -> tuple[str, float]:
        """Materialize a dirty frame; returns ``(kind, device_latency_us)``.

        ``kind`` is ``"ipa"``, ``"oop"`` or ``"skip"`` (nothing actually
        changed relative to the flash image: no I/O issued).
        """
        page = frame.page
        mapped = self.device.is_mapped(frame.lpn)
        if mapped and not page.tracked and not page.track_overflowed and not frame.ipa_disabled:
            self.stats.skipped_flushes += 1
            self._observe(frame.lpn, "skip", 0, 0, False)
            if self.telemetry is not None:
                self.telemetry.on_flush(
                    frame.lpn, "skip", 0, 0, False, False, False,
                    0, frame.slots_used, 0, 0.0,
                )
            return "skip", 0.0
        if self.page_checksum and hasattr(page, "update_checksum"):
            page.update_checksum()
        fallback = budget_overflow = False
        if (
            self.scheme.enabled
            and mapped
            and page.delta_area_size == self.scheme.area_size
            and not page.track_overflowed
            and not frame.ipa_disabled
        ):
            body, meta = page.classify_tracked()
            if self.scheme.fits(len(body), len(meta), frame.slots_used):
                result = self._flush_ipa(frame, body, meta, now)
                if result is not None:
                    return result
                self.stats.device_fallbacks += 1
                fallback = True
            else:
                self.stats.budget_overflows += 1
                budget_overflow = True
        return self._flush_oop(
            frame, now, fresh=not mapped,
            fallback=fallback, budget_overflow=budget_overflow,
        )

    def _flush_ipa(self, frame, body: list[int], meta: list[int], now: float):
        page = frame.page
        image = page.image
        body_pairs = [(offset, image[offset]) for offset in body]
        meta_pairs = [(offset, image[offset]) for offset in meta]
        records = delta.split_pairs(self.scheme, body_pairs, meta_pairs)
        offset = self.scheme.slot_offset(frame.slots_used, page.page_size)
        data = b"".join(records)
        try:
            io = self.device.write_delta(frame.lpn, offset, data, now)
        except DeltaWriteError:
            return None
        if self._ecc is not None:
            self._program_delta_ecc(frame, records, data, offset)
        # Commit marks go last: data (and its ECC) first, then the
        # marks, so a marked slot is always complete.  All marks up to
        # the new slot count are re-programmed every time — a black-box
        # device may have silently relocated the page to a fresh erased
        # OOB during an internal read-modify-write, and re-clearing
        # already cleared bits is a legal (no-op) ISPP program
        # otherwise.  The frame's own slot accounting moves only after
        # the marks land: a crash between data and mark must leave the
        # in-memory state agreeing with recovery, which will not see
        # the unmarked slots.
        committed = frame.slots_used + len(records)
        marks = bytes([_MARK_BYTE]) * committed
        self.device.write_oob(
            frame.lpn, marks, self.device.oob_size - self.scheme.n
        )
        frame.slots_used = committed
        net, gross = len(body), len(body) + len(meta)
        page.reset_tracking()
        self.stats.ipa_flushes += 1
        self.stats.delta_records_written += len(records)
        self.stats.delta_bytes_written += len(data)
        self._observe(frame.lpn, "ipa", net, gross, False)
        if self.telemetry is not None:
            self.telemetry.on_flush(
                frame.lpn, "ipa", net, gross, False, False, False,
                len(records), frame.slots_used, len(data), io.latency_us,
            )
        return "ipa", io.latency_us

    def _flush_oop(
        self,
        frame,
        now: float,
        fresh: bool = False,
        fallback: bool = False,
        budget_overflow: bool = False,
    ) -> tuple[str, float]:
        """Conventional out-of-place page write.

        ``fresh`` marks a page's first materialization (an append to a
        new page in the paper's terms); observers report it as kind
        ``"new"`` so update-size statistics can exclude it, as the
        paper's Appendix A does.  ``fallback`` and ``budget_overflow``
        carry the reason an IPA was not possible into telemetry.
        """
        page = frame.page
        body, meta = page.classify_tracked()
        net, gross = len(body), len(body) + len(meta)
        page.reset_delta_area()
        io = self.device.write(frame.lpn, bytes(page.image), now)
        if self._ecc is not None:
            code = self._ecc.encode_segment(0, bytes(page.image))
            self.device.write_oob(frame.lpn, code, self._ecc.oob_offset(0))
        frame.slots_used = 0
        frame.ipa_disabled = False
        overflowed = page.track_overflowed
        page.reset_tracking()
        self.stats.oop_flushes += 1
        kind = "new" if fresh else "oop"
        self._observe(frame.lpn, kind, net, gross, overflowed)
        if self.telemetry is not None:
            self.telemetry.on_flush(
                frame.lpn, kind, net, gross, overflowed, budget_overflow,
                fallback, 0, 0, 0, io.latency_us,
            )
        return "oop", io.latency_us

    def _program_delta_ecc(self, frame, records: list[bytes], data: bytes, offset: int) -> None:
        """Append one ECC code per freshly written delta record."""
        page_image = bytearray(frame.page.image)
        # Reconstruct the on-flash view of the records for encoding.
        page_image[offset : offset + len(data)] = data
        for index in range(len(records)):
            segment_index = 1 + frame.slots_used + index
            code = self._ecc.encode_segment(segment_index, bytes(page_image))
            self.device.write_oob(
                frame.lpn, code, self._ecc.oob_offset(segment_index)
            )

    def _observe(self, lpn: int, kind: str, net: int, gross: int, overflowed: bool) -> None:
        if self.flush_observer is not None:
            self.flush_observer(lpn, kind, net, gross, overflowed)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------

    def check_page_compatible(self, delta_area_size: int) -> None:
        """Assert a page's reserved area matches this manager's scheme."""
        if delta_area_size != self.scheme.area_size:
            raise IPAError(
                f"page reserves {delta_area_size}B but scheme {self.scheme} "
                f"needs {self.scheme.area_size}B"
            )


def full_metadata_record_size(scheme: NxMScheme, slot_count: int,
                              header_size: int = 32, slot_size: int = 4) -> int:
    """Delta-record size under the paper's rejected design alternative.

    Section 6.1: "Alternatively, the delta-record may contain the
    complete page metadata."  Such a record carries the M body pairs
    plus a verbatim copy of the header and the slot table, instead of
    byte-granular ``<value, offset>`` pairs.  The paper measured the
    byte-level tracking to shrink the delta area by 49% for a [2x3]
    scheme; the ablation bench reproduces the comparison on our layout.
    """
    from .scheme import PAIR_SIZE

    return 1 + PAIR_SIZE * scheme.m + header_size + slot_size * slot_count
