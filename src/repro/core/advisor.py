"""The IPA advisor: derive [N x M] parameters from a workload profile.

Section 8.4: "An IPA advisor automates the choice of the appropriate
M, N and V values, letting the DBA weight the general optimization
goals: (i) performance; (ii) longevity; (iii) space consumption.  The
IPA advisor is based on a background DB log-file profiling mechanism."

This implementation profiles either an
:class:`~repro.analysis.cdf.UpdateSizeCollector` (live engine hook) or
a recorded trace, and recommends a scheme per optimization goal:

* ``space``     — cover the median update (small M, small area);
* ``balanced``  — cover ~70% of updates;
* ``longevity`` — cover ~90% of updates (fewest erases, most space).

N comes from the flash technology (more ISPP passes are safe on SLC
than on MLC; Section 8.4 selects 2-3 "primarily based on Flash
specifics") and is then trimmed to the space budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IPAError
from ..flash.constants import CellType
from ..analysis.cdf import percentile_at_most, value_at_percentile
from .scheme import NxMScheme

#: Target coverage percentile per optimization goal.
GOAL_COVERAGE = {
    "space": 50.0,
    "balanced": 70.0,
    "longevity": 90.0,
}

#: Safe number of subsequent ISPP append passes per technology.
MAX_APPENDS = {
    CellType.SLC: 4,
    CellType.MLC: 2,
    CellType.TLC: 2,
}

#: The paper's practical cap on M (Section 6.1, Appendix A).
M_CAP = 125


@dataclass(frozen=True)
class Recommendation:
    """Advisor output: a scheme plus its predicted behaviour."""

    scheme: NxMScheme
    goal: str
    expected_ipa_fraction: float
    space_overhead: float
    covered_percentile: float

    def __str__(self) -> str:
        return (
            f"{self.scheme} V={self.scheme.v} ({self.goal}): "
            f"~{self.expected_ipa_fraction * 100:.0f}% IPA, "
            f"{self.space_overhead * 100:.1f}% space"
        )


class IPAAdvisor:
    """Suggests [N x M] schemes from observed update-size samples."""

    def __init__(
        self,
        net_sizes: list[int],
        meta_sizes: list[int] | None = None,
        cell_type: CellType = CellType.SLC,
        page_size: int = 4096,
    ) -> None:
        if not net_sizes:
            raise IPAError("advisor needs at least one update sample")
        self.net_sizes = list(net_sizes)
        self.meta_sizes = list(meta_sizes) if meta_sizes else [8] * len(net_sizes)
        self.cell_type = cell_type
        self.page_size = page_size

    @classmethod
    def from_collector(cls, collector, cell_type=CellType.SLC, page_size=4096) -> "IPAAdvisor":
        """Build from an :class:`~repro.analysis.cdf.UpdateSizeCollector`."""
        meta = [
            max(0, g - n) for n, g in zip(collector.net_sizes, collector.gross_sizes)
        ]
        return cls(collector.net_sizes, meta, cell_type=cell_type, page_size=page_size)

    @classmethod
    def from_log(cls, records, cell_type=CellType.SLC, page_size=4096) -> "IPAAdvisor":
        """Profile a retained write-ahead log (paper Section 8.4).

        "The IPA advisor is based on a background DB log-file profiling
        mechanism ... the DB-log contains all information regarding
        update sizes, frequencies or skew."

        The log records individual byte patches, not flush boundaries;
        the advisor approximates one prospective flush per (transaction,
        page) pair — the sum of a transaction's patch bytes on one page
        — which matches real flush sizes when buffers are small and is
        a lower bound otherwise.
        """
        from ..storage.wal import LogKind

        sizes: dict[tuple[int, int], int] = {}
        for record in records:
            if record.kind is LogKind.UPDATE:
                nbytes = sum(len(new) for __, __, new in record.payload)
            elif record.kind is LogKind.REPLACE:
                nbytes = len(record.payload[1])
            else:
                continue
            key = (record.txn_id, record.lpn)
            sizes[key] = sizes.get(key, 0) + nbytes
        if not sizes:
            raise IPAError("the log holds no update records to profile")
        return cls(list(sizes.values()), cell_type=cell_type, page_size=page_size)

    # ------------------------------------------------------------------

    def recommend(
        self,
        goal: str = "balanced",
        space_budget: float = 0.05,
    ) -> Recommendation:
        """Suggest a scheme for a goal under a space budget (fraction)."""
        if goal not in GOAL_COVERAGE:
            raise IPAError(f"unknown goal {goal!r}; pick from {sorted(GOAL_COVERAGE)}")
        coverage = GOAL_COVERAGE[goal]
        positive = [s for s in self.net_sizes if s > 0] or [1]
        m = min(M_CAP, max(1, value_at_percentile(positive, coverage)))
        v = min(64, max(2, value_at_percentile(self.meta_sizes, 99.0)))
        n = MAX_APPENDS[self.cell_type]
        scheme = NxMScheme(n, m, v)
        # Trim N, then M, to respect the space budget.
        while n > 1 and scheme.space_overhead(self.page_size) > space_budget:
            n -= 1
            scheme = NxMScheme(n, m, v)
        while m > 1 and scheme.space_overhead(self.page_size) > space_budget:
            m = max(1, m // 2)
            scheme = NxMScheme(n, m, v)
        return Recommendation(
            scheme=scheme,
            goal=goal,
            expected_ipa_fraction=self.estimate_ipa_fraction(scheme),
            space_overhead=scheme.space_overhead(self.page_size),
            covered_percentile=percentile_at_most(positive, scheme.m),
        )

    def recommend_all(self, space_budget: float = 0.05) -> dict[str, Recommendation]:
        """One recommendation per optimization goal."""
        return {goal: self.recommend(goal, space_budget) for goal in GOAL_COVERAGE}

    # ------------------------------------------------------------------

    def recommend_placement(
        self,
        samples_by_object: dict[str, list[int]],
        goal: str = "balanced",
        space_budget: float = 0.05,
        min_ipa_fraction: float = 0.30,
    ) -> dict[str, Recommendation | None]:
        """Per-object region placement (paper Section 5 + contribution II).

        "Write-intensive tables or indexes dominated by small updates
        can be placed in a region which uses pSLC as IPA mode ...
        Read-only objects or objects dominated by large updates can be
        placed in yet another region, which does not utilize IPA."

        For each object's update-size profile, a per-object advisor
        recommends a scheme; objects whose predicted IPA fraction falls
        below ``min_ipa_fraction`` (or that see no updates at all) map
        to ``None`` — leave them in a conventional region and pay no
        delta-area space for them.
        """
        placement: dict[str, Recommendation | None] = {}
        for name, sizes in samples_by_object.items():
            positive = [s for s in sizes if s > 0]
            if not positive:
                placement[name] = None
                continue
            advisor = IPAAdvisor(
                positive, cell_type=self.cell_type, page_size=self.page_size
            )
            recommendation = advisor.recommend(goal, space_budget)
            if recommendation.expected_ipa_fraction < min_ipa_fraction:
                placement[name] = None
            else:
                placement[name] = recommendation
        return placement

    def estimate_ipa_fraction(self, scheme: NxMScheme) -> float:
        """Predict the fraction of update I/Os served as appends.

        Model: a page alternates between one out-of-place write (which
        resets the slots) and as many appends as the budget allows.  An
        update of ``net`` bytes needs ``ceil(net/M)`` records, so per
        observed sample we charge its record need and count how many of
        a random stream fit before the reset — a stationary renewal
        estimate validated against engine runs in the test suite.
        """
        if not scheme.enabled:
            return 0.0
        slots = 0
        appends = 0
        writes = 0
        for net, meta in zip(self.net_sizes, self.meta_sizes):
            writes += 1
            if net + meta == 0:
                continue
            if scheme.fits(net, meta, slots):
                appends += 1
                slots += scheme.records_needed(net, meta)
            else:
                slots = 0
        return appends / writes if writes else 0.0
