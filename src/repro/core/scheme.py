"""The [N x M] scheme: sizing and placement of the delta-record area.

Section 6 of the paper: a database page may absorb up to **N**
subsequent In-Place Appends (delta records), each covering at most
**M** modified bytes of tuple data plus at most **V** modified bytes of
page metadata (header, slot table, PageLSN).  Each modified byte costs
a 3-byte ``<new_value, offset>`` pair (1 value byte + 2 offset bytes),
plus one control byte per record:

    delta_record_size = 1 + 3*M + 3*V
    delta_area_size   = N * delta_record_size

The delta-record area sits at the very end of the database page so its
flash cells stay erased until a record is appended.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchemeError

#: Bytes of one <new_value, offset> pair: 1 value byte + 2 offset bytes.
PAIR_SIZE = 3

#: Control byte value marking a present (programmed) delta record.
CTRL_PRESENT = 0x00

#: Control byte value of an absent record (erased cells).
CTRL_ABSENT = 0xFF


@dataclass(frozen=True)
class NxMScheme:
    """One [N x M] configuration with its metadata budget V.

    ``n = 0`` (the paper's ``[0 x 0]`` columns) disables IPA entirely:
    no space is reserved and every flush is an out-of-place write.
    """

    n: int
    m: int
    v: int = 12

    def __post_init__(self) -> None:
        if self.n < 0 or self.m < 0 or self.v < 0:
            raise SchemeError("scheme parameters must be non-negative")
        if self.n > 0 and self.m == 0:
            raise SchemeError("M must be positive when N > 0")
        if self.n == 0 and self.m != 0:
            raise SchemeError("[0 x M] is meaningless; use [0 x 0]")

    @property
    def enabled(self) -> bool:
        return self.n > 0

    @property
    def record_size(self) -> int:
        """Bytes of one delta record: control byte + M body + V meta pairs."""
        if not self.enabled:
            return 0
        return 1 + PAIR_SIZE * (self.m + self.v)

    @property
    def area_size(self) -> int:
        """Bytes reserved at the end of each database page."""
        return self.n * self.record_size

    def space_overhead(self, page_size: int) -> float:
        """Fraction of the page consumed by the delta-record area."""
        return self.area_size / page_size

    def area_offset(self, page_size: int) -> int:
        """Start offset of the delta-record area within the page."""
        if self.area_size >= page_size:
            raise SchemeError(
                f"[{self.n}x{self.m}] area of {self.area_size}B does not fit a "
                f"{page_size}B page"
            )
        return page_size - self.area_size

    def slot_offset(self, index: int, page_size: int) -> int:
        """Start offset of delta-record slot ``index`` (0-based)."""
        if not 0 <= index < self.n:
            raise SchemeError(f"delta slot {index} outside [0, {self.n})")
        return self.area_offset(page_size) + index * self.record_size

    def records_needed(self, body_bytes: int, meta_bytes: int) -> int:
        """Delta records required for the given tracked change volume."""
        if body_bytes == 0 and meta_bytes == 0:
            return 0
        need_body = -(-body_bytes // self.m) if self.m else 0
        need_meta = -(-meta_bytes // self.v) if self.v else (1 if meta_bytes else 0)
        if self.v == 0 and meta_bytes > 0:
            return self.n + 1  # cannot host metadata changes: force overflow
        return max(need_body, need_meta, 1)

    def fits(self, body_bytes: int, meta_bytes: int, slots_used: int) -> bool:
        """Whether tracked changes still fit in the remaining slots.

        This is the paper's Section 6.2 accounting: a freshly fetched
        page carries ``slots_used`` records from earlier evictions; at
        most ``(N - slots_used) * M`` body bytes (and ``* V`` metadata
        bytes) may still be absorbed.
        """
        if not self.enabled:
            return False
        remaining = self.n - slots_used
        if remaining <= 0:
            return body_bytes == 0 and meta_bytes == 0
        return self.records_needed(body_bytes, meta_bytes) <= remaining

    def __str__(self) -> str:
        return f"[{self.n}x{self.m}]"


#: The paper's baseline: no IPA, conventional out-of-place writes.
SCHEME_OFF = NxMScheme(0, 0, 0)
