"""Counters kept by the IPA manager."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IPAStats:
    """Flush-path outcomes of one engine run."""

    #: Flushes materialized as In-Place Appends (one write_delta each).
    ipa_flushes: int = 0
    #: Flushes written out-of-place (full page writes).
    oop_flushes: int = 0
    #: Dirty flushes whose tracked diff was empty: no I/O at all.
    skipped_flushes: int = 0
    #: Delta records written across all IPA flushes.
    delta_records_written: int = 0
    #: Payload bytes of all delta records (including padding pairs).
    delta_bytes_written: int = 0
    #: IPA attempts rejected by the device (e.g. MSB residency under
    #: odd-MLC) that fell back to an out-of-place write.
    device_fallbacks: int = 0
    #: Flushes that went out-of-place because the tracked changes
    #: overflowed the [N x M] budget.
    budget_overflows: int = 0
    #: Bits corrected by ECC during loads (only with ECC enabled).
    ecc_corrected_bits: int = 0

    @property
    def flushes(self) -> int:
        return self.ipa_flushes + self.oop_flushes + self.skipped_flushes

    @property
    def ipa_fraction(self) -> float:
        """Fraction of update I/Os performed as In-Place Appends.

        The denominator excludes skipped flushes — those never reach
        the device, matching the paper's "Out-of-Place Writes vs.
        In-Place Appends" rows, which split actual write requests.
        """
        writes = self.ipa_flushes + self.oop_flushes
        return self.ipa_flushes / writes if writes else 0.0

    def snapshot(self) -> dict:
        """Plain-dict copy including the derived IPA fraction."""
        data = dict(self.__dict__)
        data["ipa_fraction"] = self.ipa_fraction
        return data
