"""Counters kept by the IPA manager.

Like :class:`~repro.ftl.stats.DeviceStats`, :class:`IPAStats` is a thin
façade over :class:`~repro.telemetry.metrics.MetricsRegistry` counters:
a stand-alone instance owns a private registry, :meth:`IPAStats.bind`
re-homes the counters into a shared telemetry registry, and re-running
``stats.__init__()`` resets values while keeping the binding.
"""

from __future__ import annotations

from ..telemetry.metrics import MetricsRegistry


def _counter_field(name: str, doc: str) -> property:
    """A property delegating ``stats.<name>`` to a registry counter."""

    def fget(self):
        return self._metrics[name].value

    def fset(self, value):
        self._metrics[name].value = value

    return property(fget, fset, doc=doc)


#: field name -> help string; the façade exposes exactly these.
_IPA_FIELDS = {
    "ipa_flushes": "Flushes materialized as In-Place Appends",
    "oop_flushes": "Flushes written out-of-place (full page writes)",
    "skipped_flushes": "Dirty flushes with an empty tracked diff: no I/O",
    "delta_records_written": "Delta records written across all IPA flushes",
    "delta_bytes_written": "Payload bytes of all delta records",
    "device_fallbacks": "IPA attempts rejected by the device",
    "budget_overflows": "Flushes gone out-of-place on [N x M] budget overflow",
    "ecc_corrected_bits": "Bits corrected by ECC during loads",
}


class IPAStats:
    """Flush-path outcomes of one engine run.

    Field semantics (see also the registry help strings):

    * ``ipa_flushes`` — flushes materialized as In-Place Appends (one
      ``write_delta`` each); ``oop_flushes`` — full out-of-place page
      writes; ``skipped_flushes`` — dirty flushes whose tracked diff
      was empty (no I/O at all).
    * ``device_fallbacks`` — IPA attempts rejected by the device (e.g.
      MSB residency under odd-MLC) that fell back to an out-of-place
      write; ``budget_overflows`` — flushes that went out-of-place
      because the tracked changes overflowed the [N x M] budget.
    """

    ipa_flushes = _counter_field("ipa_flushes", _IPA_FIELDS["ipa_flushes"])
    oop_flushes = _counter_field("oop_flushes", _IPA_FIELDS["oop_flushes"])
    skipped_flushes = _counter_field(
        "skipped_flushes", _IPA_FIELDS["skipped_flushes"]
    )
    delta_records_written = _counter_field(
        "delta_records_written", _IPA_FIELDS["delta_records_written"]
    )
    delta_bytes_written = _counter_field(
        "delta_bytes_written", _IPA_FIELDS["delta_bytes_written"]
    )
    device_fallbacks = _counter_field(
        "device_fallbacks", _IPA_FIELDS["device_fallbacks"]
    )
    budget_overflows = _counter_field(
        "budget_overflows", _IPA_FIELDS["budget_overflows"]
    )
    ecc_corrected_bits = _counter_field(
        "ecc_corrected_bits", _IPA_FIELDS["ecc_corrected_bits"]
    )

    def __init__(
        self,
        ipa_flushes: int = 0,
        oop_flushes: int = 0,
        skipped_flushes: int = 0,
        delta_records_written: int = 0,
        delta_bytes_written: int = 0,
        device_fallbacks: int = 0,
        budget_overflows: int = 0,
        ecc_corrected_bits: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if registry is None:
            registry = getattr(self, "_registry", None) or MetricsRegistry()
        self._registry = registry
        self._metrics = {
            name: registry.counter(f"ipa_{name}", help=help_text)
            for name, help_text in _IPA_FIELDS.items()
        }
        self.ipa_flushes = ipa_flushes
        self.oop_flushes = oop_flushes
        self.skipped_flushes = skipped_flushes
        self.delta_records_written = delta_records_written
        self.delta_bytes_written = delta_bytes_written
        self.device_fallbacks = device_fallbacks
        self.budget_overflows = budget_overflows
        self.ecc_corrected_bits = ecc_corrected_bits

    def bind(self, registry: MetricsRegistry) -> None:
        """Re-home the counters into ``registry``, keeping their values."""
        if registry is self._registry:
            return
        for metric in self._metrics.values():
            registry.adopt(metric)
        self._registry = registry

    def __eq__(self, other) -> bool:
        if not isinstance(other, IPAStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in _IPA_FIELDS
        )

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in _IPA_FIELDS
        )
        return f"IPAStats({fields})"

    @property
    def flushes(self) -> int:
        """All flushes: IPA + out-of-place + skipped."""
        return self.ipa_flushes + self.oop_flushes + self.skipped_flushes

    @property
    def ipa_fraction(self) -> float:
        """Fraction of update I/Os performed as In-Place Appends.

        The denominator excludes skipped flushes — those never reach
        the device, matching the paper's "Out-of-Place Writes vs.
        In-Place Appends" rows, which split actual write requests.
        """
        writes = self.ipa_flushes + self.oop_flushes
        return self.ipa_flushes / writes if writes else 0.0

    def snapshot(self) -> dict:
        """Plain-dict copy including the derived IPA fraction."""
        data = {name: getattr(self, name) for name in _IPA_FIELDS}
        data["ipa_fraction"] = self.ipa_fraction
        return data
