"""In-Place Appends: the paper's core contribution.

The [N x M] scheme, delta-record encoding, the flush/fetch manager that
turns small in-place updates into physical in-place appends, and the
IPA advisor that picks scheme parameters from a workload profile.
"""

from .advisor import GOAL_COVERAGE, IPAAdvisor, Recommendation
from .decisions import DecisionCounts, scheme_decisions
from .delta import apply_pairs, decode_area, decode_record, encode_record, split_pairs
from .manager import IPAManager
from .scheme import CTRL_ABSENT, CTRL_PRESENT, PAIR_SIZE, NxMScheme, SCHEME_OFF
from .stats import IPAStats

__all__ = [
    "DecisionCounts",
    "scheme_decisions",
    "GOAL_COVERAGE",
    "IPAAdvisor",
    "Recommendation",
    "apply_pairs",
    "decode_area",
    "decode_record",
    "encode_record",
    "split_pairs",
    "IPAManager",
    "CTRL_ABSENT",
    "CTRL_PRESENT",
    "PAIR_SIZE",
    "NxMScheme",
    "SCHEME_OFF",
    "IPAStats",
]
