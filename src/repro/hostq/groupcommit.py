"""Event-driven WAL group commit for the host scheduler.

Commits do not touch the flash array (log writes go to a dedicated
sequential device, see :mod:`repro.storage.wal`); what they share is the
log *force*.  :class:`GroupCommitGate` models leader-based group commit
the way Shore-MT and InnoDB implement it:

* the first commit to arrive while no force is running becomes the
  leader and starts a force (completing ``force_latency_us`` later);
* commits arriving while a force is in flight join the next batch;
* when the force completes, every commit captured in its batch
  completes together, and — if joiners queued up meanwhile — the next
  force starts immediately with up to ``max_group`` of them.

Under light load every commit pays the full force latency (no batching
to exploit); under heavy load forces pipeline back-to-back and each one
retires up to ``max_group`` commits — the classic throughput-saving
behaviour, reproduced from event timing rather than a fixed amortization
factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from .request import Request

__all__ = ["GroupCommitGate", "GroupCommitStats"]


@dataclass
class GroupCommitStats:
    """Counters of one gate's lifetime."""

    commits: int = 0
    forces: int = 0
    max_batch: int = 0

    @property
    def commits_per_force(self) -> float:
        """Mean batch size (1.0 = no batching happened)."""
        return self.commits / self.forces if self.forces else 0.0


class GroupCommitGate:
    """Leader-based commit batching driven by scheduler events."""

    def __init__(
        self, force_latency_us: float = 50.0, max_group: int = 8, log=None
    ) -> None:
        if max_group < 1:
            raise ValueError(f"max_group must be >= 1, got {max_group}")
        #: Bound :class:`~repro.storage.wal.LogManager`, if any.  The
        #: gate then takes its force latency from the log and charges
        #: every force through ``log.note_force(batch)``, so engine-side
        #: WAL counters (forces, commits_grouped) stay authoritative —
        #: one group-commit accounting, two scheduling disciplines.
        self.log = log
        if log is not None:
            force_latency_us = log.force_latency_us
        self.force_latency_us = force_latency_us
        self.max_group = max_group
        self._queued: list[Request] = []
        self._batch: list[Request] | None = None
        self.stats = GroupCommitStats()

    @property
    def force_in_flight(self) -> bool:
        """Whether a log force is currently running."""
        return self._batch is not None

    @property
    def outstanding(self) -> int:
        """Commits inside the gate (queued or in the running force)."""
        return len(self._queued) + (len(self._batch) if self._batch else 0)

    def submit(self, request: Request, now: float) -> float | None:
        """Add one commit; returns the force-completion time to schedule.

        ``None`` means a force is already in flight and the commit
        joined the queue — the caller schedules nothing; the running
        force's completion (:meth:`force_done`) will start the next one.
        """
        self._queued.append(request)
        self.stats.commits += 1
        if self._batch is None:
            return self._start_force(now)
        return None

    def _start_force(self, now: float) -> float:
        take = min(self.max_group, len(self._queued))
        self._batch = self._queued[:take]
        del self._queued[:take]
        self.stats.forces += 1
        self.stats.max_batch = max(self.stats.max_batch, take)
        if self.log is not None:
            self.log.note_force(take)
        return now + self.force_latency_us

    def force_done(self, now: float) -> tuple[list[Request], float | None]:
        """Retire the running force's batch at time ``now``.

        Returns the completed commit requests (their ``completed_us`` is
        stamped) and, when joiners are queued, the completion time of
        the immediately-started next force.
        """
        if self._batch is None:
            raise RuntimeError("force_done with no force in flight")
        done = self._batch
        self._batch = None
        for request in done:
            request.completed_us = now
        next_done = self._start_force(now) if self._queued else None
        return done, next_done
