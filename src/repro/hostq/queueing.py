"""The NCQ-style submission queue with admission control.

The queue bounds the number of requests the host keeps in flight —
``queue_depth`` is the NCQ depth: pending (submitted, not yet
dispatched) plus outstanding (dispatched, not yet completed) requests
together never exceed it.  Arrivals beyond the bound hit the admission
policy:

* ``"block"`` — backpressure: the request parks in a wait list with its
  *original* arrival time, so its eventual end-to-end latency includes
  the time it spent blocked (closed-loop clients simply stall);
* ``"reject"`` — the request is refused outright and counted; open-loop
  load beyond the device's capacity surfaces as a rejection rate
  instead of an unbounded queue.

Dispatch is occupancy-aware: :meth:`SubmissionQueue.pick` scans the
pending requests in FIFO order and returns the first one whose target
channel (die) is free *now*, skipping requests whose channel is busy —
head-of-line bypass, which is what lets independent dies overlap.  Two
guards keep it correct:

* per-LPN ordering — a request whose logical page already has an
  in-flight request never dispatches (no reordering of same-page I/O);
* unknown channels — a request the device cannot place (``channel_of``
  returned ``None``) dispatches whenever any channel is free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .request import OpKind, Request

__all__ = ["AdmissionPolicy", "QueueStats", "SubmissionQueue"]

#: Valid admission policies.
ADMISSION_POLICIES = ("block", "reject")


class AdmissionPolicy:
    """Namespace for the two admission-control behaviours."""

    BLOCK = "block"
    REJECT = "reject"


@dataclass
class QueueStats:
    """Counters of one submission queue's lifetime."""

    admitted: int = 0
    rejected: int = 0
    blocked: int = 0
    dispatched: int = 0
    completed: int = 0
    max_depth_used: int = 0
    #: Dispatches that bypassed an older pending request stuck behind a
    #: busy die (the NCQ win).
    holb_bypasses: int = 0
    waiting_peak: int = 0
    extra: dict = field(default_factory=dict)


class SubmissionQueue:
    """Bounded host-side queue feeding the device scheduler."""

    def __init__(self, depth: int, policy: str = AdmissionPolicy.BLOCK) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; choose from {ADMISSION_POLICIES}"
            )
        self.depth = depth
        self.policy = policy
        self._pending: deque[Request] = deque()
        self._waiting: deque[Request] = deque()
        self._inflight_lpns: set[int] = set()
        self.in_flight = 0
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def depth_used(self) -> int:
        """Requests currently counted against the queue depth."""
        return len(self._pending) + self.in_flight

    def has_pending(self) -> bool:
        """Whether any admitted request still awaits dispatch."""
        return bool(self._pending)

    def has_waiting(self) -> bool:
        """Whether any request is parked behind backpressure."""
        return bool(self._waiting)

    def admit(self, request: Request) -> str:
        """Submit one request; returns ``"admitted"|"blocked"|"rejected"``.

        Blocked requests keep their arrival timestamp and enter the
        queue automatically as completions free depth (see
        :meth:`complete`).
        """
        if self.depth_used < self.depth:
            self._pending.append(request)
            self.stats.admitted += 1
            self.stats.max_depth_used = max(self.stats.max_depth_used, self.depth_used)
            return "admitted"
        if self.policy == AdmissionPolicy.REJECT:
            request.rejected = True
            self.stats.rejected += 1
            return "rejected"
        self._waiting.append(request)
        self.stats.blocked += 1
        self.stats.waiting_peak = max(self.stats.waiting_peak, len(self._waiting))
        return "blocked"

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def pick(self, now: float, occupancy, channel_hint) -> Request | None:
        """The first dispatchable pending request, or ``None``.

        ``occupancy`` is the device's per-channel busy-until tuple;
        ``channel_hint(request)`` maps a request to its target channel
        index (or ``None`` for unpredictable).  FIFO order with
        head-of-line bypass: a request behind a busy die does not stall
        the requests behind it that target free dies.
        """
        any_free: bool | None = None  # computed lazily: most hints are concrete
        for index, request in enumerate(self._pending):
            if request.lpn >= 0 and request.lpn in self._inflight_lpns:
                continue
            channel = channel_hint(request)
            if channel is None:
                if any_free is None:
                    any_free = any(busy <= now for busy in occupancy)
                if not any_free:
                    continue
            elif occupancy[channel] > now:
                continue
            del self._pending[index]
            if index > 0:
                self.stats.holb_bypasses += 1
            if request.lpn >= 0:
                self._inflight_lpns.add(request.lpn)
            self.in_flight += 1
            self.stats.dispatched += 1
            return request
        return None

    def next_channel_event(self, now: float, occupancy) -> float | None:
        """Earliest future time a busy channel frees up (poll target)."""
        future = [busy for busy in occupancy if busy > now]
        return min(future) if future else None

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def complete(self, request: Request) -> list[Request]:
        """Account one completed request; drains the blocked wait list.

        Returns the requests admitted off the wait list (they are
        already in the pending queue; callers only need the list when
        they track per-request admission outcomes).
        """
        self.in_flight -= 1
        if request.lpn >= 0:
            self._inflight_lpns.discard(request.lpn)
        self.stats.completed += 1
        admitted: list[Request] = []
        while self._waiting and self.depth_used < self.depth:
            waiter = self._waiting.popleft()
            self._pending.append(waiter)
            self.stats.admitted += 1
            admitted.append(waiter)
        self.stats.max_depth_used = max(self.stats.max_depth_used, self.depth_used)
        return admitted


def kind_channel_op(kind: OpKind) -> str:
    """The ``channel_of`` op string for a request kind."""
    if kind is OpKind.WRITE:
        return "write"
    if kind is OpKind.DELTA:
        return "delta"
    return "read"
