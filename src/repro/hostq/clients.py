"""Arrival processes: closed-loop clients and open-loop Poisson streams.

Two standard load models (the distinction matters — see the open- vs
closed-loop literature the queueing community leans on):

* **closed loop** — N clients, each with at most one request in the
  system; after a completion the client thinks for an exponentially
  distributed time and submits its next operation.  Offered load is
  self-limiting: a saturated device slows the clients down.
* **open loop** — operations arrive as a Poisson process at a fixed
  rate regardless of completions, assigned to client sessions
  round-robin.  Offered load is unconditional: a saturated device grows
  the queue until admission control pushes back, which is where tail
  latency and rejection rates come from.

All randomness flows through per-object ``random.Random`` instances
seeded from the run seed, never the global RNG (the determinism
invariant iplint enforces).
"""

from __future__ import annotations

import random

from ..workloads.sessions import ClientSession, SessionProfile

__all__ = ["ClosedLoopClient", "OpenLoopArrivals", "build_sessions"]


def build_sessions(
    profile: SessionProfile,
    clients: int,
    logical_pages: int,
    seed: int,
) -> list[ClientSession]:
    """One deterministic session per client, independently seeded."""
    return [
        ClientSession(profile, logical_pages, seed=seed, client=index)
        for index in range(clients)
    ]


class ClosedLoopClient:
    """One closed-loop client: submit, wait, think, repeat."""

    def __init__(
        self,
        index: int,
        session: ClientSession,
        think_time_us: float = 0.0,
        seed: int = 7,
    ) -> None:
        self.index = index
        self.session = session
        self.think_time_us = think_time_us
        self._rng = random.Random(seed * 7_368_787 + index + 1)

    def think(self) -> float:
        """Exponential think-time draw (0 when thinking is disabled)."""
        if self.think_time_us <= 0.0:
            return 0.0
        return self._rng.expovariate(1.0 / self.think_time_us)

    def next_op(self) -> tuple[str, int, int]:
        """The client's next operation from its session stream."""
        return self.session.next_op()


class OpenLoopArrivals:
    """Poisson arrival chain feeding round-robin client sessions."""

    def __init__(
        self,
        sessions: list[ClientSession],
        rate_rps: float,
        seed: int = 7,
    ) -> None:
        if rate_rps <= 0.0:
            raise ValueError(f"arrival rate must be positive, got {rate_rps}")
        if not sessions:
            raise ValueError("open-loop arrivals need at least one session")
        self.sessions = sessions
        self.rate_rps = rate_rps
        self._rng = random.Random(seed * 2_654_435 + 1)
        self._cursor = 0

    def interarrival_us(self) -> float:
        """Exponential gap to the next arrival, in simulated µs."""
        return self._rng.expovariate(self.rate_rps) * 1e6

    def next_op(self) -> tuple[int, tuple[str, int, int]]:
        """``(client, operation)`` of the next arrival (round-robin)."""
        client = self._cursor
        self._cursor = (self._cursor + 1) % len(self.sessions)
        return client, self.sessions[client].next_op()
