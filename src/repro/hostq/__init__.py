"""Host-side request scheduling, queueing, and the load-test harness.

The paper's evaluation (Section 8) runs trace-driven storage-engine
benchmarks one operation at a time; real hosts keep many commands in
flight per device.  ``repro.hostq`` adds that missing dimension as its
own subsystem:

* :mod:`~repro.hostq.request` — the request record and operation kinds;
* :mod:`~repro.hostq.queueing` — the NCQ-style bounded submission queue
  with block/reject admission control and head-of-line bypass;
* :mod:`~repro.hostq.groupcommit` — event-driven leader-based WAL group
  commit;
* :mod:`~repro.hostq.clients` — closed-loop clients with think time and
  open-loop Poisson arrivals, all seeded;
* :mod:`~repro.hostq.scheduler` — the deterministic discrete-event loop
  dispatching against the :class:`~repro.ftl.device.FlashDevice`
  occupancy hooks, so independent dies genuinely overlap;
* :mod:`~repro.hostq.loadtest` — ``repro loadtest``: throughput,
  end-to-end latency percentiles, and the queue-depth sweep;
* :mod:`~repro.hostq.txnexec` — ``repro loadtest --level txn``: whole
  engine transactions (buffer pool, WAL, group commit) driven as
  resumable storage programs under the same scheduler.

The layer programs strictly against the device *protocol* — it never
imports a concrete backend (iplint's device-layering rule holds here
too), which is what lets one load harness compare NoFTL, BlockSSD and
the sharded controller unchanged.
"""

from .clients import ClosedLoopClient, OpenLoopArrivals, build_sessions
from .groupcommit import GroupCommitGate, GroupCommitStats
from .loadtest import (
    LoadTestConfig,
    LoadTestResult,
    format_sweep,
    run_loadtest,
    sweep_queue_depth,
)
from .queueing import ADMISSION_POLICIES, AdmissionPolicy, QueueStats, SubmissionQueue
from .request import OpKind, Request
from .scheduler import HostScheduler, SchedulerStats
from .txnexec import (
    TxnExecutor,
    TxnLoadTestConfig,
    TxnLoadTestResult,
    run_txn_loadtest,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "ClosedLoopClient",
    "GroupCommitGate",
    "GroupCommitStats",
    "HostScheduler",
    "LoadTestConfig",
    "LoadTestResult",
    "OpenLoopArrivals",
    "OpKind",
    "QueueStats",
    "Request",
    "SchedulerStats",
    "SubmissionQueue",
    "TxnExecutor",
    "TxnLoadTestConfig",
    "TxnLoadTestResult",
    "build_sessions",
    "format_sweep",
    "run_loadtest",
    "run_txn_loadtest",
    "sweep_queue_depth",
]
