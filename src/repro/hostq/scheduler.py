"""The deterministic discrete-event host scheduler.

One event loop drives everything: client arrivals, device completions,
log-force completions and channel polls are heap events ordered by
``(time, sequence)`` — the monotonic sequence breaks ties, so two runs
with the same seed replay the exact same event order (byte-identical
reports, the acceptance bar for ``repro loadtest``).

After every event the scheduler runs the dispatch loop: it repeatedly
asks the :class:`~repro.hostq.queueing.SubmissionQueue` for a request
whose target die is free *right now* (occupancy re-queried after each
dispatch, since executing a command advances that die's clock) and
executes it on the device, scheduling its completion at ``now +
observed latency``.  When pending requests remain but every relevant
die is busy, a poll event is scheduled at the earliest channel-free
time, so the loop always makes progress without ever busy-waiting.

Commits bypass the device queue entirely — the WAL is a separate
sequential device — and flow through the
:class:`~repro.hostq.groupcommit.GroupCommitGate`.

The scheduler is device-agnostic: it programs strictly against the
:class:`~repro.ftl.device.FlashDevice` protocol's ``occupancy()`` /
``channel_of()`` dispatch hooks plus an injected *executor* (a callable
turning a request into an observed device latency), so NoFTL, BlockSSD
and ShardedDevice all run underneath it unchanged.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass

from .groupcommit import GroupCommitGate
from .queueing import SubmissionQueue, kind_channel_op
from .request import OpKind, Request

__all__ = ["HostScheduler", "SchedulerStats"]


@dataclass
class SchedulerStats:
    """Event-loop counters of one scheduler run."""

    events: int = 0
    polls: int = 0
    dispatch_rounds: int = 0


class HostScheduler:
    """Event loop + dispatch policy over one FlashDevice."""

    def __init__(
        self,
        device,
        queue: SubmissionQueue,
        executor: Callable[[Request, float], float],
        gate: GroupCommitGate | None = None,
        on_complete: Callable[[Request, float], None] | None = None,
    ) -> None:
        self.device = device
        self.queue = queue
        self.executor = executor
        self.gate = gate
        #: Called after every request completes (or is rejected); the
        #: load harness hooks closed-loop re-arrivals and sampling here.
        self.on_complete = on_complete
        self.now = 0.0
        self.completed: list[Request] = []
        self.rejected: list[Request] = []
        self.stats = SchedulerStats()
        self._events: list[tuple[float, int, Callable[[float], None]]] = []
        self._event_seq = 0
        self._next_poll: float | None = None

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------

    def schedule(self, time: float, action: Callable[[float], None]) -> None:
        """Enqueue ``action(now)`` to fire at simulated time ``time``."""
        self._event_seq += 1
        heapq.heappush(self._events, (time, self._event_seq, action))

    def run(self) -> float:
        """Drain the event heap; returns the final simulated time."""
        while self._events:
            time, __, action = heapq.heappop(self._events)
            self.now = max(self.now, time)
            self.stats.events += 1
            action(self.now)
            self._dispatch(self.now)
        return self.now

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: Request, now: float) -> str:
        """One request enters the host: queue it or hand it to the gate.

        Returns the admission outcome (``"admitted"``, ``"blocked"``,
        ``"rejected"``, or ``"gated"`` for commits).
        """
        request.arrival_us = now
        if request.kind is OpKind.COMMIT:
            if self.gate is None:
                # No WAL modelled: commits complete instantly.
                request.dispatched_us = now
                self._complete(request, now, via_queue=False)
                return "gated"
            request.dispatched_us = now
            force_done_at = self.gate.submit(request, now)
            if force_done_at is not None:
                self.schedule(force_done_at, self._force_done)
            return "gated"
        outcome = self.queue.admit(request)
        if outcome == "rejected":
            request.completed_us = now
            self.rejected.append(request)
            if self.on_complete is not None:
                self.on_complete(request, now)
        return outcome

    def _force_done(self, now: float) -> None:
        """A log force finished: retire its batch, chain the next one."""
        assert self.gate is not None
        done, next_done_at = self.gate.force_done(now)
        for request in done:
            self._complete(request, now, via_queue=False, stamped=True)
        if next_done_at is not None:
            self.schedule(next_done_at, self._force_done)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _channel_hint(self, request: Request) -> int | None:
        return self.device.channel_of(request.lpn, kind_channel_op(request.kind))

    def _dispatch(self, now: float) -> None:
        self.stats.dispatch_rounds += 1
        while True:
            occupancy = self.device.occupancy()
            request = self.queue.pick(now, occupancy, self._channel_hint)
            if request is None:
                break
            request.dispatched_us = now
            latency = self.executor(request, now)
            self.schedule(now + latency, self._completion_action(request))
        if self.queue.has_pending():
            # ``occupancy`` is the snapshot the failed pick just used —
            # no command ran since, so it is still current.
            wake = self.queue.next_channel_event(now, occupancy)
            if wake is not None and (self._next_poll is None or wake < self._next_poll):
                self._next_poll = wake
                self.schedule(wake, self._poll)
        # If pending requests exist with every channel idle, they are
        # blocked on per-LPN conflicts; the conflicting completion event
        # will retrigger dispatch, so no poll is needed.

    def _poll(self, now: float) -> None:
        self.stats.polls += 1
        if self._next_poll is not None and self._next_poll <= now:
            self._next_poll = None
        # Dispatch runs after every event; the poll's only job was to
        # exist at the channel-free time.

    def _completion_action(self, request: Request) -> Callable[[float], None]:
        def action(now: float) -> None:
            self._complete(request, now, via_queue=True)

        return action

    def _complete(
        self, request: Request, now: float, via_queue: bool, stamped: bool = False
    ) -> None:
        if not stamped:
            request.completed_us = now
        if via_queue:
            self.queue.complete(request)
        self.completed.append(request)
        if self.on_complete is not None:
            self.on_complete(request, now)
