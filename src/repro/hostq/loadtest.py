"""The load-test harness: concurrent clients against one backend.

``repro loadtest`` builds a device, prefills every logical page (with an
erased delta tail, so appends are possible), then replays a seeded
multi-client load through the :class:`~repro.hostq.scheduler.HostScheduler`
and reports throughput plus end-to-end latency percentiles — the
concurrent-load methodology behind the paper's Figures 7-10 latency
CDFs, on the simulated stack.

End-to-end latency is completion time minus arrival time, per request;
percentiles are computed from the exact sample set (the telemetry
histogram is also fed, for export, but its bucketed quantiles are not
what the report prints).  Everything is deterministic for a fixed seed
and flag set: the report strings are byte-identical across runs, which
CI asserts.

The queue-depth sweep (:func:`sweep_queue_depth`) reruns one
configuration across depths; on a multi-die backend throughput rises
with depth while p99 grows, until die utilization saturates — the NCQ
story "How to Write to SSDs" tells, reproduced end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.cdf import CDF, sample_percentile
from ..analysis.report import format_table
from ..errors import ReproError
from ..session import SessionConfig, open_device
from ..telemetry.metrics import LATENCY_BUCKETS_US, MetricsRegistry
from ..workloads.sessions import PROFILES
from .clients import ClosedLoopClient, OpenLoopArrivals, build_sessions
from .groupcommit import GroupCommitGate, GroupCommitStats
from .queueing import ADMISSION_POLICIES, QueueStats, SubmissionQueue
from .request import KIND_BY_NAME, OpKind, Request
from .scheduler import HostScheduler

__all__ = [
    "LoadTestConfig",
    "LoadTestResult",
    "run_loadtest",
    "sweep_queue_depth",
    "format_sweep",
]

#: Reported latency quantiles, in report order.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


@dataclass(frozen=True)
class LoadTestConfig:
    """One load-test configuration (every field is CLI-settable)."""

    backend: str = "noftl"
    clients: int = 8
    queue_depth: int = 8
    arrival: str = "closed"
    seed: int = 7
    requests: int = 2000
    profile: str = "uniform"
    logical_pages: int = 512
    shards: int = 4
    #: Closed-loop mean think time between a completion and the client's
    #: next submission (exponential; 0 = maximum pressure).
    think_us: float = 0.0
    #: Open-loop Poisson arrival rate, requests per second.
    rate_rps: float = 20_000.0
    admission: str = "block"
    #: Commits batched per WAL force (1 = force every commit).
    group_commit: int = 8
    force_latency_us: float = 50.0

    def validate(self) -> None:
        """Reject configurations the harness cannot run (ReproError)."""
        if self.arrival not in ("closed", "open"):
            raise ReproError(f"arrival must be 'closed' or 'open', got {self.arrival!r}")
        if self.admission not in ADMISSION_POLICIES:
            raise ReproError(f"admission must be one of {ADMISSION_POLICIES}")
        if self.profile not in PROFILES:
            raise ReproError(
                f"unknown profile {self.profile!r}; choose from {sorted(PROFILES)}"
            )
        if self.clients < 1:
            raise ReproError("need at least one client")
        if self.requests < 1:
            raise ReproError("need at least one request")

    def label(self, with_depth: bool = True) -> str:
        """One-line run descriptor used in report titles."""
        backend = self.backend
        if backend == "sharded":
            backend = f"sharded[{self.shards}]"
        depth = f"depth={self.queue_depth} " if with_depth else ""
        return (
            f"backend={backend} clients={self.clients} {depth}"
            f"arrival={self.arrival} profile={self.profile} seed={self.seed}"
        )


class DeviceExecutor:
    """Turns queued requests into FlashDevice commands.

    Owns the per-page delta cursor: full writes re-arm a page's erased
    tail, deltas append into it left to right, and an exhausted tail (or
    a device veto) falls back to a full-page rewrite — the same
    write/append economy the storage engine's IPA manager implements,
    restated at the raw device level so the load test exercises GC and
    ISPP appends realistically.
    """

    def __init__(self, device, delta_area_bytes: int) -> None:
        self.device = device
        self.page_size = device.page_size
        self.tail = max(0, min(delta_area_bytes, self.page_size // 2))
        self.body = self.page_size - self.tail
        self._cursor: dict[int, int] = {}
        self.delta_fallbacks = 0

    def page_image(self, lpn: int, stamp: int) -> bytes:
        """A full-page image: patterned body plus an erased delta tail."""
        fill = (lpn * 31 + stamp) % 251
        return bytes([fill]) * self.body + b"\xff" * self.tail

    def prefill(self, logical_pages: int) -> None:
        """Materialize every logical page (load phase, clock at 0)."""
        for lpn in range(logical_pages):
            self.device.write(lpn, self.page_image(lpn, 0), 0.0)
            self._cursor[lpn] = 0

    def execute(self, request: Request, now: float) -> float:
        """Run one request on the device; returns the observed latency."""
        if request.kind is OpKind.READ:
            return self.device.read(request.lpn, now).latency_us
        if request.kind is OpKind.WRITE:
            self._cursor[request.lpn] = 0
            image = self.page_image(request.lpn, request.seq)
            return self.device.write(request.lpn, image, now).latency_us
        if request.kind is OpKind.DELTA:
            return self._execute_delta(request, now)
        raise ReproError(f"executor cannot run {request.kind}")

    def _execute_delta(self, request: Request, now: float) -> float:
        length = max(1, request.length)
        cursor = self._cursor.get(request.lpn, self.tail)
        offset = self.body + cursor
        if (
            cursor + length <= self.tail
            and self.device.can_write_delta(request.lpn, offset, length)
        ):
            payload = bytes([request.seq % 251]) * length
            self._cursor[request.lpn] = cursor + length
            return self.device.write_delta(request.lpn, offset, payload, now).latency_us
        # Tail exhausted (or the device vetoed): rewrite the page, which
        # re-arms its delta area.  This is the paper's fallback path.
        self.delta_fallbacks += 1
        self._cursor[request.lpn] = 0
        image = self.page_image(request.lpn, request.seq)
        return self.device.write(request.lpn, image, now).latency_us


@dataclass
class LoadTestResult:
    """Everything one load-test run measured."""

    config: LoadTestConfig
    generated: int
    completed: int
    rejected: int
    makespan_us: float
    throughput_rps: float
    mean_latency_us: float
    max_latency_us: float
    percentiles: dict[str, float]
    kind_counts: dict[str, int]
    delta_fallbacks: int
    channels: int
    die_utilization: float
    queue_stats: QueueStats
    gate_stats: GroupCommitStats
    samples: list[float] = field(repr=False, default_factory=list)

    def cdf(self) -> CDF:
        """Latency CDF over the exact end-to-end samples."""
        return CDF.from_samples(list(self.samples))

    def to_dict(self) -> dict:
        """JSON-friendly summary (benchmark trajectory tracking)."""
        return {
            "backend": self.config.backend,
            "clients": self.config.clients,
            "queue_depth": self.config.queue_depth,
            "arrival": self.config.arrival,
            "profile": self.config.profile,
            "seed": self.config.seed,
            "generated": self.generated,
            "completed": self.completed,
            "rejected": self.rejected,
            "makespan_us": self.makespan_us,
            "throughput_rps": self.throughput_rps,
            "mean_latency_us": self.mean_latency_us,
            "max_latency_us": self.max_latency_us,
            "percentiles": dict(self.percentiles),
            "kind_counts": dict(self.kind_counts),
            "delta_fallbacks": self.delta_fallbacks,
            "channels": self.channels,
            "die_utilization": self.die_utilization,
            "holb_bypasses": self.queue_stats.holb_bypasses,
            "max_depth_used": self.queue_stats.max_depth_used,
            "commit_forces": self.gate_stats.forces,
            "commits_per_force": self.gate_stats.commits_per_force,
        }

    def report(self) -> str:
        """The deterministic human-readable report ``repro loadtest`` prints."""
        rows = [
            ["requests completed", self.completed],
            ["requests rejected", self.rejected],
            ["throughput [req/s]", self.throughput_rps],
            ["mean latency [us]", self.mean_latency_us],
        ]
        rows += [[f"{name} latency [us]", value] for name, value in self.percentiles.items()]
        rows += [
            ["max latency [us]", self.max_latency_us],
            ["queue depth used (max)", self.queue_stats.max_depth_used],
            ["head-of-line bypasses", self.queue_stats.holb_bypasses],
            ["delta fallbacks", self.delta_fallbacks],
            ["commit forces", self.gate_stats.forces],
            ["commits per force", self.gate_stats.commits_per_force],
            ["die channels", self.channels],
            ["die utilization [%]", 100.0 * self.die_utilization],
            ["makespan [ms]", self.makespan_us / 1000.0],
        ]
        return format_table(
            ["metric", "value"], rows, title=f"loadtest: {self.config.label()}"
        )


def _total_busy_us(device) -> float:
    """Sum of per-chip accumulated command time across the device."""
    scratch = MetricsRegistry()
    device.collect_gauges(scratch)
    return sum(
        metric.value
        for metric in scratch
        if "chip_" in metric.name and metric.name.endswith("_busy_time_us")
    )


def run_loadtest(config: LoadTestConfig, registry: MetricsRegistry | None = None) -> LoadTestResult:
    """Run one configuration end to end; deterministic for a fixed seed."""
    config.validate()
    if registry is None:
        registry = MetricsRegistry()
    device = open_device(SessionConfig(
        backend=config.backend, logical_pages=config.logical_pages,
        shards=config.shards, seed=config.seed,
    ))
    profile = PROFILES[config.profile]
    executor = DeviceExecutor(device, profile.delta_area_bytes)
    executor.prefill(config.logical_pages)
    device.reset_stats()
    t0 = max(device.occupancy())
    busy0 = _total_busy_us(device)

    queue = SubmissionQueue(config.queue_depth, policy=config.admission)
    gate = GroupCommitGate(
        force_latency_us=config.force_latency_us, max_group=config.group_commit
    )
    sessions = build_sessions(
        profile, config.clients, config.logical_pages, config.seed
    )
    generated = 0
    samples: list[float] = []
    kind_counts = {kind.value: 0 for kind in OpKind}
    latency_hist = registry.histogram(
        "hostq_request_latency_us", buckets=LATENCY_BUCKETS_US,
        help="End-to-end request latency (completion minus arrival)",
    )

    def build_request(client: int, op: tuple[str, int, int]) -> Request:
        nonlocal generated
        kind_name, lpn, length = op
        generated += 1
        return Request(
            seq=generated, client=client, kind=KIND_BY_NAME[kind_name],
            lpn=lpn, length=length,
        )

    scheduler = HostScheduler(device, queue, executor.execute, gate=gate)

    if config.arrival == "closed":
        clients = [
            ClosedLoopClient(index, session, config.think_us, seed=config.seed)
            for index, session in enumerate(sessions)
        ]

        def on_complete(request: Request, now: float) -> None:
            if not request.rejected:
                samples.append(request.latency_us)
                latency_hist.observe(request.latency_us)
                kind_counts[request.kind.value] += 1
            if generated >= config.requests:
                return
            client = clients[request.client]
            delay = client.think()
            scheduler.schedule(now + delay, _closed_arrival(client))

        def _closed_arrival(client: ClosedLoopClient):
            def action(now: float) -> None:
                if generated >= config.requests:
                    return
                scheduler.submit(build_request(client.index, client.next_op()), now)

            return action

        scheduler.on_complete = on_complete
        for client in clients:
            scheduler.schedule(t0, _closed_arrival(client))
    else:
        arrivals = OpenLoopArrivals(sessions, config.rate_rps, seed=config.seed)

        def on_complete_open(request: Request, now: float) -> None:
            if not request.rejected:
                samples.append(request.latency_us)
                latency_hist.observe(request.latency_us)
                kind_counts[request.kind.value] += 1

        def open_arrival(now: float) -> None:
            client, op = arrivals.next_op()
            scheduler.submit(build_request(client, op), now)
            if generated < config.requests:
                scheduler.schedule(now + arrivals.interarrival_us(), open_arrival)

        scheduler.on_complete = on_complete_open
        scheduler.schedule(t0 + arrivals.interarrival_us(), open_arrival)

    end = scheduler.run()
    makespan = max(end - t0, 1e-9)
    busy1 = _total_busy_us(device)
    channels = len(device.occupancy())
    utilization = min(1.0, (busy1 - busy0) / (channels * makespan))
    ordered = sorted(samples)
    completed = len(samples)
    rejected = len(scheduler.rejected)

    registry.counter(
        "hostq_requests_total", help="Requests generated by the load clients"
    ).inc(generated)
    registry.counter(
        "hostq_completed_total", help="Requests completed end to end"
    ).inc(completed)
    registry.counter(
        "hostq_rejected_total", help="Requests refused by admission control"
    ).inc(rejected)
    registry.counter(
        "hostq_blocked_total", help="Requests that waited behind backpressure"
    ).inc(queue.stats.blocked)
    registry.counter(
        "hostq_delta_fallbacks_total",
        help="Delta requests degraded to full-page rewrites",
    ).inc(executor.delta_fallbacks)
    registry.counter(
        "hostq_commit_forces_total", help="WAL forces issued by the commit gate"
    ).inc(gate.stats.forces)
    registry.counter(
        "hostq_holb_bypasses_total",
        help="Dispatches that overtook a request stuck behind a busy die",
    ).inc(queue.stats.holb_bypasses)

    return LoadTestResult(
        config=config,
        generated=generated,
        completed=completed,
        rejected=rejected,
        makespan_us=makespan,
        throughput_rps=completed / (makespan / 1e6),
        mean_latency_us=sum(ordered) / completed if completed else 0.0,
        max_latency_us=ordered[-1] if ordered else 0.0,
        percentiles={name: sample_percentile(ordered, q) for name, q in QUANTILES},
        kind_counts=kind_counts,
        delta_fallbacks=executor.delta_fallbacks,
        channels=channels,
        die_utilization=utilization,
        queue_stats=queue.stats,
        gate_stats=gate.stats,
        samples=samples,
    )


def sweep_queue_depth(
    config: LoadTestConfig, depths: list[int]
) -> list[LoadTestResult]:
    """Rerun one configuration across queue depths (fresh device each)."""
    if not depths:
        raise ReproError("sweep needs at least one queue depth")
    return [
        run_loadtest(replace(config, queue_depth=depth)) for depth in depths
    ]


def format_sweep(results: list[LoadTestResult]) -> str:
    """The deterministic throughput-vs-queue-depth sweep table."""
    rows = [
        [
            result.config.queue_depth,
            result.throughput_rps,
            result.percentiles["p50"],
            result.percentiles["p99"],
            100.0 * result.die_utilization,
        ]
        for result in results
    ]
    config = results[0].config
    return format_table(
        ["queue depth", "throughput [req/s]", "p50 [us]", "p99 [us]", "die util [%]"],
        rows,
        title=f"queue-depth sweep: {config.label(with_depth=False)}",
    )
