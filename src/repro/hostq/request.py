"""Request objects flowing through the host queueing layer.

A :class:`Request` is one client operation with its full timing history:
when it arrived at the host (entered the submission queue), when the
scheduler dispatched it to the device, and when it completed.  The
paper's Figures 7-10 measure *end-to-end* latency under concurrent load;
that is :attr:`Request.latency_us` — completion minus arrival — which
includes queueing and admission-control delay, not just device time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["OpKind", "Request"]


class OpKind(Enum):
    """Operation kinds a client can submit."""

    READ = "read"
    WRITE = "write"
    DELTA = "delta"
    COMMIT = "commit"


#: Session-adapter kind strings -> request kinds.
KIND_BY_NAME = {kind.value: kind for kind in OpKind}


@dataclass
class Request:
    """One client operation and its lifecycle timestamps (simulated µs)."""

    seq: int
    client: int
    kind: OpKind
    lpn: int = -1
    length: int = 0
    arrival_us: float = 0.0
    dispatched_us: float | None = None
    completed_us: float | None = None
    #: Set when admission control turned the request away (reject policy).
    rejected: bool = False

    @property
    def latency_us(self) -> float:
        """End-to-end latency: completion minus arrival."""
        if self.completed_us is None:
            raise ValueError(f"request {self.seq} has not completed")
        return self.completed_us - self.arrival_us

    @property
    def queue_wait_us(self) -> float:
        """Time spent waiting in the host queue before dispatch."""
        if self.dispatched_us is None:
            raise ValueError(f"request {self.seq} was never dispatched")
        return self.dispatched_us - self.arrival_us
