"""The transaction executor: full engine transactions under the scheduler.

The device-level load test (:mod:`repro.hostq.loadtest`) drives raw page
operations; this module closes the gap to the paper's headline numbers,
which are *transaction-level*: N concurrent clients each run whole
transactions — reads and WAL-logged updates through the buffer pool,
commit forces through group commit — and the end-to-end transaction
latency includes queueing, frame-pin conflicts and commit batching.

The machinery is the storage-program refactor paying off: engine
operations are generators yielding typed
:class:`~repro.storage.program.DeviceCommand` items.  Standalone, they
run synchronously on a scalar clock; here, :class:`TxnExecutor` drives
the *same generators* one event at a time:

* yielded device commands become :class:`~repro.hostq.request.Request`
  objects flowing through the :class:`~repro.hostq.queueing.SubmissionQueue`
  (NCQ depth, head-of-line bypass, per-LPN ordering), and the program
  resumes with the observed end-to-end wait when its request completes;
* log forces route through the event-driven
  :class:`~repro.hostq.groupcommit.GroupCommitGate`, which charges the
  engine's own :class:`~repro.storage.wal.LogManager` via ``note_force``
  — one group-commit accounting, two scheduling disciplines;
* CPU charges accrue on a :class:`~repro.storage.clock.DeferredClock`
  and are drained into event delays, so simulated time has exactly one
  owner: the event heap.

Concurrency control is deliberately simple and deterministic: a
transaction acquires a per-LPN operation lock around each page
operation (released before the next op), and an LPN with queued or
in-flight device commands cannot be acquired until they drain — which
is what makes a re-fetch racing a queued eviction write-back
impossible.  Rollbacks (deliberate or failure-driven) acquire their
undo set in sorted LPN order before undoing; operations never wait
while holding a lock, so the lock graph is cycle-free.

Everything is deterministic for a fixed seed: same-seed reports are
byte-identical across runs and backends are exercised identically,
which CI asserts with a cmp rerun.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace

from ..analysis.cdf import sample_percentile
from ..analysis.report import format_table
from ..core.scheme import NxMScheme, SCHEME_OFF
from ..errors import ReproError
from ..storage.clock import DeferredClock
from ..storage.page_layout import HEADER_SIZE, SlottedPage
from ..storage.program import CommandKind, DeviceCommand
from ..telemetry.metrics import LATENCY_BUCKETS_US, MetricsRegistry
from ..session import SessionConfig, open_session
from ..workloads.sessions import PROFILES, ClientSession
from .clients import ClosedLoopClient
from .groupcommit import GroupCommitGate
from .loadtest import QUANTILES, _total_busy_us
from .queueing import SubmissionQueue
from .request import OpKind, Request
from .scheduler import HostScheduler

__all__ = [
    "TxnExecutor",
    "TxnLoadTestConfig",
    "TxnLoadTestResult",
    "run_txn_loadtest",
]

#: DeviceCommand kinds -> request kinds (queue channel routing).
_KIND_FOR = {
    CommandKind.READ: OpKind.READ,
    CommandKind.PROGRAM: OpKind.WRITE,
    CommandKind.APPEND: OpKind.DELTA,
    CommandKind.FORCE: OpKind.COMMIT,
}

#: Bytes patched by a "write" (non-delta) update op — large enough to
#: overflow any practical [N x M] budget, so it materializes as an
#: out-of-place page write, mirroring the full-page rewrites of the
#: device-level harness.
_WRITE_PATCH_BYTES = 128


class _Acquire:
    """Sentinel a transaction program yields to take an LPN's op lock."""

    __slots__ = ("lpn",)

    def __init__(self, lpn: int) -> None:
        self.lpn = lpn


class _Release:
    """Sentinel a transaction program yields to drop an LPN's op lock."""

    __slots__ = ("lpn",)

    def __init__(self, lpn: int) -> None:
        self.lpn = lpn


class _TxnCtx:
    """One transaction attempt in flight through the executor."""

    __slots__ = (
        "client", "ops", "rollback", "start_us", "gen", "txn",
        "held", "retries", "recovering",
    )

    def __init__(self, client: int, ops: list, rollback: bool, start_us: float) -> None:
        self.client = client
        self.ops = ops
        self.rollback = rollback
        self.start_us = start_us
        self.gen = None
        self.txn = None
        self.held: set[int] = set()
        self.retries = 0
        self.recovering = False


@dataclass(frozen=True)
class TxnLoadTestConfig:
    """One transaction-level load-test configuration."""

    backend: str = "noftl"
    clients: int = 4
    queue_depth: int = 8
    seed: int = 7
    #: Total transactions across all clients.
    txns: int = 200
    profile: str = "tpcb"
    logical_pages: int = 256
    shards: int = 4
    scheme: NxMScheme = SCHEME_OFF
    #: Buffer pool as a fraction of the logical pages (floored so every
    #: client can hold a pin plus headroom for the victim scan).
    buffer_fraction: float = 0.5
    eviction: str = "eager"
    think_us: float = 0.0
    #: Commits batched per WAL force (gate max_group).
    group_commit: int = 8
    #: Override of the profile's rollback fraction (``None`` = profile).
    rollback: float | None = None
    #: Override of the profile's ops per transaction (0 = profile; a
    #: profile without commit cadence falls back to 4).
    ops_per_txn: int = 0

    def validate(self) -> None:
        """Reject configurations the harness cannot run (ReproError)."""
        if self.profile not in PROFILES:
            raise ReproError(
                f"unknown profile {self.profile!r}; choose from {sorted(PROFILES)}"
            )
        if self.clients < 1:
            raise ReproError("need at least one client")
        if self.txns < 1:
            raise ReproError("need at least one transaction")
        if not 0.0 < self.buffer_fraction <= 1.0:
            raise ReproError("buffer_fraction must be in (0, 1]")
        if self.rollback is not None and not 0.0 <= self.rollback <= 1.0:
            raise ReproError("rollback fraction must be in [0, 1]")

    def effective_ops_per_txn(self) -> int:
        """Ops per transaction after profile defaults and overrides."""
        return self.ops_per_txn or PROFILES[self.profile].ops_per_txn or 4

    def rollback_fraction(self) -> float:
        """Deliberate-rollback fraction after profile defaults."""
        if self.rollback is not None:
            return self.rollback
        return PROFILES[self.profile].rollback_fraction

    def label(self) -> str:
        """One-line run descriptor used in report titles."""
        backend = self.backend
        if backend == "sharded":
            backend = f"sharded[{self.shards}]"
        return (
            f"backend={backend} clients={self.clients} depth={self.queue_depth} "
            f"profile={self.profile} scheme={self.scheme} seed={self.seed}"
        )


class TxnExecutor:
    """Interleaves N clients' transactions over one scheduled engine.

    The executor owns the per-LPN operation locks, the command-busy
    tracking, and the retry/rollback policy; the engine contributes the
    storage programs and the scheduler contributes time.
    """

    def __init__(
        self,
        engine,
        clock: DeferredClock,
        queue: SubmissionQueue,
        gate: GroupCommitGate,
        sessions: list[ClientSession],
        config: TxnLoadTestConfig,
    ) -> None:
        self.engine = engine
        self.clock = clock
        self.config = config
        self.scheduler = HostScheduler(
            engine.device, queue, self._execute, gate=gate,
            on_complete=self._on_complete,
        )
        self._clients = [
            ClosedLoopClient(index, session, config.think_us, seed=config.seed)
            for index, session in enumerate(sessions)
        ]
        self._rollback_rngs = [
            random.Random(config.seed * 9_176_087 + index + 1)
            for index in range(len(sessions))
        ]
        self._rollback_fraction = config.rollback_fraction()
        #: lpn -> owning transaction context (operation lock).
        self._busy_ops: dict[int, _TxnCtx] = {}
        #: lpn -> queued/in-flight device command count.
        self._busy_cmds: dict[int, int] = {}
        #: lpn -> FIFO of contexts waiting to acquire.
        self._waiters: dict[int, deque[_TxnCtx]] = {}
        self._next_seq = 0
        self.txns_started = 0
        self.txns_committed = 0
        self.txns_aborted = 0
        self.txns_retried = 0
        self.conflict_waits = 0
        #: End-to-end latency (µs) of every *committed* transaction.
        self.samples: list[float] = []

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------

    def start(self, t0: float) -> None:
        """Arm every client's first transaction at time ``t0``."""
        for client in range(len(self._clients)):
            self.scheduler.schedule(
                t0, lambda now, c=client: self._start_txn(c)
            )

    def run(self) -> float:
        """Drain the event loop; returns the final simulated time."""
        return self.scheduler.run()

    # ------------------------------------------------------------------
    # Transaction assembly
    # ------------------------------------------------------------------

    def _assemble(self, client: int) -> list:
        """The client's next transaction: session ops up to its commit."""
        session = self._clients[client].session
        ops = []
        while True:
            kind, lpn, length = session.next_op()
            if kind == "commit":
                if ops:
                    return ops
                continue
            ops.append((kind, lpn, length))

    def _start_txn(self, client: int) -> None:
        if self.txns_started >= self.config.txns:
            return
        self.txns_started += 1
        ops = self._assemble(client)
        rollback = (
            self._rollback_rngs[client].random() < self._rollback_fraction
        )
        ctx = _TxnCtx(client, ops, rollback, self.scheduler.now)
        ctx.gen = self._txn_program(ctx)
        self._step(ctx, None)

    def _txn_program(self, ctx: _TxnCtx):
        """One transaction as a resumable program over engine programs."""
        engine = self.engine
        txn = engine.begin()
        ctx.txn = txn
        for op_index, (kind, lpn, length) in enumerate(ctx.ops):
            yield _Acquire(lpn)
            if kind == "read":
                yield from engine.read_program(lpn)
            else:
                patch_len = length if kind == "delta" else _WRITE_PATCH_BYTES
                offset, payload = self._patch(lpn, patch_len, op_index, txn.txn_id)
                yield from engine.update_program(txn, lpn, offset, payload)
            yield _Release(lpn)
        if ctx.rollback:
            yield from self._rollback_steps(ctx, txn)
            return "aborted"
        yield from engine.commit_program(txn)
        return "committed"

    def _patch(
        self, lpn: int, length: int, op_index: int, txn_id: int
    ) -> tuple[int, bytes]:
        """A deterministic byte patch inside the page's record body."""
        window = (
            self.engine.page_size - self.engine.config.scheme.area_size - HEADER_SIZE
        )
        length = max(1, min(length, window))
        span = window - length + 1
        offset = HEADER_SIZE + (lpn * 2_654_435_761 + op_index * 97 + txn_id * 13) % span
        payload = bytes((lpn + txn_id + op_index + i) % 251 for i in range(length))
        return offset, payload

    def _rollback_steps(self, ctx: _TxnCtx, txn):
        """Undo a transaction: quiesce its undo pages, then roll back.

        The undo set is acquired in sorted LPN order *before* the
        synchronous :meth:`~repro.storage.engine.StorageEngine.abort`
        runs, which waits out any queued write-backs on those pages —
        the rollback must not read a page whose eviction flush is still
        in the submission queue.  Rollback I/O itself is synchronous
        (it occupies the chips but bypasses the queue), a deliberate
        simplification for a rare path.
        """
        lpns = sorted(
            {record.lpn for record in txn.undo if record.lpn >= 0} - ctx.held
        )
        for lpn in lpns:
            yield _Acquire(lpn)
        self.engine.abort(txn)
        for lpn in lpns:
            yield _Release(lpn)

    def _recovery_program(self, ctx: _TxnCtx):
        """Roll back a failed attempt so it can retry or give up."""
        txn = ctx.txn
        if txn is not None and txn.is_active:
            yield from self._rollback_steps(ctx, txn)
        return "recovered"

    # ------------------------------------------------------------------
    # Program driving
    # ------------------------------------------------------------------

    def _step(self, ctx: _TxnCtx, send_value) -> None:
        """Advance one program until it blocks, finishes, or fails."""
        scheduler = self.scheduler
        while True:
            self.clock.sync_to(scheduler.now)
            try:
                item = ctx.gen.send(send_value)
            except StopIteration as stop:
                outcome = stop.value
                pending = self.clock.take_pending()
                if pending > 0:
                    scheduler.schedule(
                        scheduler.now + pending,
                        lambda now, o=outcome: self._finish(ctx, o),
                    )
                else:
                    self._finish(ctx, outcome)
                return
            except ReproError:
                self.clock.take_pending()
                self._recover(ctx)
                return
            pending = self.clock.take_pending()
            if pending > 0:
                # CPU (or other foreground) time accrued before this
                # yield: realize it as an event delay, then handle the
                # yielded item at its true time.
                scheduler.schedule(
                    scheduler.now + pending,
                    lambda now, i=item: self._resume_item(ctx, i),
                )
                return
            advanced, send_value = self._handle_item(ctx, item)
            if not advanced:
                return

    def _resume_item(self, ctx: _TxnCtx, item) -> None:
        advanced, send_value = self._handle_item(ctx, item)
        if advanced:
            self._step(ctx, send_value)

    def _handle_item(self, ctx: _TxnCtx, item) -> tuple[bool, object]:
        """Process one yielded item; returns (advance now?, send value)."""
        if isinstance(item, _Acquire):
            lpn = item.lpn
            if lpn in ctx.held:
                return True, None
            if lpn not in self._busy_ops and not self._busy_cmds.get(lpn):
                self._busy_ops[lpn] = ctx
                ctx.held.add(lpn)
                return True, None
            self.conflict_waits += 1
            self._waiters.setdefault(lpn, deque()).append(ctx)
            return False, None
        if isinstance(item, _Release):
            self._release(ctx, item.lpn)
            return True, None
        self._submit_command(ctx, item)
        return False, None

    def _release(self, ctx: _TxnCtx, lpn: int) -> None:
        ctx.held.discard(lpn)
        if self._busy_ops.get(lpn) is ctx:
            del self._busy_ops[lpn]
        self._wake(lpn)

    def _wake(self, lpn: int) -> None:
        """Grant the LPN to its oldest waiter if it is now fully free."""
        waiters = self._waiters.get(lpn)
        if not waiters:
            return
        if lpn in self._busy_ops or self._busy_cmds.get(lpn):
            return
        ctx = waiters.popleft()
        if not waiters:
            del self._waiters[lpn]
        self._busy_ops[lpn] = ctx
        ctx.held.add(lpn)
        self.scheduler.schedule(
            self.scheduler.now, lambda now, c=ctx: self._step(c, None)
        )

    def _submit_command(self, ctx: _TxnCtx, command: DeviceCommand) -> None:
        self._next_seq += 1
        request = Request(
            seq=self._next_seq, client=ctx.client,
            kind=_KIND_FOR[command.kind], lpn=command.lpn,
        )
        request.command = command
        request.ctx = ctx
        if command.lpn >= 0 and command.kind is not CommandKind.FORCE:
            self._busy_cmds[command.lpn] = self._busy_cmds.get(command.lpn, 0) + 1
        self.scheduler.submit(request, self.scheduler.now)

    def _execute(self, request: Request, now: float) -> float:
        """Scheduler executor hook: run the request's device command."""
        return request.command.run(now)

    def _on_complete(self, request: Request, now: float) -> None:
        ctx = getattr(request, "ctx", None)
        if ctx is None:
            return
        command = request.command
        if command.lpn >= 0 and command.kind is not CommandKind.FORCE:
            remaining = self._busy_cmds[command.lpn] - 1
            if remaining:
                self._busy_cmds[command.lpn] = remaining
            else:
                del self._busy_cmds[command.lpn]
                self._wake(command.lpn)
        self._step(ctx, now - request.arrival_us)

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------

    def _recover(self, ctx: _TxnCtx) -> None:
        """A program raised: release locks, roll back, maybe retry."""
        for lpn in sorted(ctx.held):
            self._release(ctx, lpn)
        if ctx.recovering:
            # Recovery itself failed (pathological, e.g. pool exhausted
            # while undoing): give the transaction up for good.
            if ctx.txn is not None and ctx.txn.is_active:
                self.engine.txns.finish_abort(ctx.txn, self.engine.clock)
            self._finish(ctx, "failed")
            return
        ctx.recovering = True
        ctx.gen = self._recovery_program(ctx)
        self._step(ctx, None)

    def _finish(self, ctx: _TxnCtx, outcome) -> None:
        now = self.scheduler.now
        if outcome == "recovered":
            if ctx.retries < 1:
                # One fresh attempt, same ops, original start time — the
                # reported latency includes the failed attempt.
                self.txns_retried += 1
                ctx.retries += 1
                ctx.recovering = False
                ctx.txn = None
                ctx.gen = self._txn_program(ctx)
                self._step(ctx, None)
                return
            self.txns_aborted += 1
        elif outcome == "committed":
            self.txns_committed += 1
            self.samples.append(now - ctx.start_us)
        else:  # "aborted" (deliberate rollback) or "failed"
            self.txns_aborted += 1
        client = ctx.client
        delay = self._clients[client].think()
        self.scheduler.schedule(
            now + delay, lambda t, c=client: self._start_txn(c)
        )


@dataclass
class TxnLoadTestResult:
    """Everything one transaction-level load-test run measured."""

    config: TxnLoadTestConfig
    started: int
    committed: int
    aborted: int
    retried: int
    conflict_waits: int
    makespan_us: float
    throughput_tps: float
    mean_latency_us: float
    max_latency_us: float
    percentiles: dict[str, float]
    log_forces: int
    commits_grouped: int
    commits_per_force: float
    ipa_flushes: int
    oop_flushes: int
    skipped_flushes: int
    buffer_hit_ratio: float
    channels: int
    die_utilization: float
    samples: list[float] = field(repr=False, default_factory=list)

    def to_dict(self) -> dict:
        """JSON-friendly summary (benchmark trajectory tracking)."""
        return {
            "backend": self.config.backend,
            "clients": self.config.clients,
            "queue_depth": self.config.queue_depth,
            "profile": self.config.profile,
            "scheme": str(self.config.scheme),
            "seed": self.config.seed,
            "started": self.started,
            "committed": self.committed,
            "aborted": self.aborted,
            "retried": self.retried,
            "conflict_waits": self.conflict_waits,
            "makespan_us": self.makespan_us,
            "throughput_tps": self.throughput_tps,
            "mean_latency_us": self.mean_latency_us,
            "max_latency_us": self.max_latency_us,
            "percentiles": dict(self.percentiles),
            "log_forces": self.log_forces,
            "commits_grouped": self.commits_grouped,
            "commits_per_force": self.commits_per_force,
            "ipa_flushes": self.ipa_flushes,
            "oop_flushes": self.oop_flushes,
            "skipped_flushes": self.skipped_flushes,
            "buffer_hit_ratio": self.buffer_hit_ratio,
            "channels": self.channels,
            "die_utilization": self.die_utilization,
        }

    def report(self) -> str:
        """The deterministic report ``repro loadtest --level txn`` prints."""
        rows = [
            ["transactions committed", self.committed],
            ["transactions aborted", self.aborted],
            ["transactions retried", self.retried],
            ["conflict waits", self.conflict_waits],
            ["throughput [txn/s]", self.throughput_tps],
            ["mean txn latency [us]", self.mean_latency_us],
        ]
        rows += [
            [f"{name} txn latency [us]", value]
            for name, value in self.percentiles.items()
        ]
        rows += [
            ["max txn latency [us]", self.max_latency_us],
            ["log forces", self.log_forces],
            ["commits grouped", self.commits_grouped],
            ["commits per force", self.commits_per_force],
            ["ipa flushes", self.ipa_flushes],
            ["oop flushes", self.oop_flushes],
            ["skipped flushes", self.skipped_flushes],
            ["buffer hit ratio [%]", 100.0 * self.buffer_hit_ratio],
            ["die channels", self.channels],
            ["die utilization [%]", 100.0 * self.die_utilization],
            ["makespan [ms]", self.makespan_us / 1000.0],
        ]
        return format_table(
            ["metric", "value"], rows, title=f"txn loadtest: {self.config.label()}"
        )


def run_txn_loadtest(
    config: TxnLoadTestConfig, registry: MetricsRegistry | None = None
) -> TxnLoadTestResult:
    """Run one transaction-level configuration end to end.

    Deterministic for a fixed seed: the report is byte-identical across
    runs on every backend.
    """
    config.validate()
    if registry is None:
        registry = MetricsRegistry()
    profile = dataclass_replace(
        PROFILES[config.profile], ops_per_txn=config.effective_ops_per_txn()
    )
    clock = DeferredClock()
    buffer_pages = max(
        config.clients + 2, int(config.logical_pages * config.buffer_fraction)
    )
    session = open_session(SessionConfig(
        backend=config.backend,
        logical_pages=config.logical_pages,
        shards=config.shards,
        scheme=config.scheme,
        buffer_pages=buffer_pages,
        eviction=config.eviction,
        clock=clock,
        seed=config.seed,
        engine=dict(group_commit=config.group_commit),
    ))
    device, engine = session.device, session.engine
    # Load phase: materialize every page as a formatted, empty slotted
    # page (erased delta tail) so engine fetches decode cleanly.
    area = config.scheme.area_size
    for lpn in range(config.logical_pages):
        page = SlottedPage.format(lpn, device.page_size, area)
        device.write(lpn, bytes(page.image), 0.0)
    device.reset_stats()
    t0 = max(device.occupancy())
    busy0 = _total_busy_us(device)
    clock.sync_to(t0)

    queue = SubmissionQueue(config.queue_depth, policy="block")
    gate = GroupCommitGate(max_group=config.group_commit, log=engine.log)
    sessions = [
        ClientSession(profile, config.logical_pages, seed=config.seed, client=index)
        for index in range(config.clients)
    ]
    executor = TxnExecutor(engine, clock, queue, gate, sessions, config)
    executor.start(t0)
    end = executor.run()
    # Pin-leak assertion: every completed operation released its pins.
    engine.pool.assert_no_pins()

    makespan = max(end - t0, 1e-9)
    busy1 = _total_busy_us(device)
    channels = len(device.occupancy())
    ordered = sorted(executor.samples)
    committed = executor.txns_committed

    registry.counter(
        "txn_started_total", help="Transactions started by the load clients"
    ).inc(executor.txns_started)
    registry.counter(
        "txn_committed_total", help="Transactions committed end to end"
    ).inc(committed)
    registry.counter(
        "txn_aborted_total", help="Transactions rolled back (deliberate or failed)"
    ).inc(executor.txns_aborted)
    registry.counter(
        "txn_retried_total", help="Transaction attempts retried after a failure"
    ).inc(executor.txns_retried)
    registry.counter(
        "txn_conflict_waits_total",
        help="Operation-lock acquisitions that had to wait",
    ).inc(executor.conflict_waits)
    latency_hist = registry.histogram(
        "txn_latency_us", buckets=LATENCY_BUCKETS_US,
        help="End-to-end committed-transaction latency",
    )
    for sample in executor.samples:
        latency_hist.observe(sample)

    log = engine.log
    return TxnLoadTestResult(
        config=config,
        started=executor.txns_started,
        committed=committed,
        aborted=executor.txns_aborted,
        retried=executor.txns_retried,
        conflict_waits=executor.conflict_waits,
        makespan_us=makespan,
        throughput_tps=committed / (makespan / 1e6),
        mean_latency_us=sum(ordered) / committed if committed else 0.0,
        max_latency_us=ordered[-1] if ordered else 0.0,
        percentiles={name: sample_percentile(ordered, q) for name, q in QUANTILES},
        log_forces=log.forces,
        commits_grouped=log.commits_grouped,
        commits_per_force=(
            executor.scheduler.gate.stats.commits_per_force
            if executor.scheduler.gate else 0.0
        ),
        ipa_flushes=engine.ipa.stats.ipa_flushes,
        oop_flushes=engine.ipa.stats.oop_flushes,
        skipped_flushes=engine.ipa.stats.skipped_flushes,
        buffer_hit_ratio=engine.pool.stats.hit_ratio,
        channels=channels,
        die_utilization=min(1.0, (busy1 - busy0) / (channels * makespan)),
        samples=list(executor.samples),
    )
