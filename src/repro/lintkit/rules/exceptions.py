"""exception-discipline: no bare or blind exception handlers.

A simulator that swallows exceptions silently corrupts its accounting:
a ``ProgramError`` or ``OutOfSpaceError`` absorbed by a blanket handler
turns a physical-invariant violation into a wrong number in a results
table.  In ``src/repro``:

* ``except:`` (bare) is always a finding;
* ``except Exception:`` / ``except BaseException:`` is a finding
  *unless* the handler re-raises — the pin/unpin cleanup idiom
  (``except Exception: unpin(); raise``) stays legal because the error
  still propagates.

Handlers for specific exception types are the expected style and are
never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, LintModule, Rule

_BLANKET_TYPES = frozenset({"Exception", "BaseException"})


def _names_blanket_type(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches Exception/BaseException (incl. tuples)."""
    node = handler.type
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    return any(
        isinstance(item, ast.Name) and item.id in _BLANKET_TYPES
        for item in candidates
    )


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises (any ``raise`` statement)."""
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


class ExceptionDisciplineRule(Rule):
    """Ban bare ``except:`` and swallowed blanket handlers."""

    id = "exception-discipline"
    description = (
        "no bare except:; except Exception: only as a cleanup-and-"
        "reraise — errors must propagate or be caught by precise type"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Flag bare handlers and blanket handlers that swallow."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` swallows every error including "
                    "KeyboardInterrupt; catch a precise exception type",
                )
            elif _names_blanket_type(node) and not _reraises(node):
                yield self.finding(
                    module, node,
                    "`except Exception:` without re-raise hides invariant "
                    "violations; catch the precise type or `raise` after "
                    "cleanup",
                )
