"""clock-discipline: simulated time advances through the Clock API.

The storage-program refactor gave simulated time a single owner: every
engine-side latency charge goes through
:meth:`repro.storage.clock.Clock.advance` (or ``sync_to``), which is
what lets the same code run standalone (scalar clock) or under the
hostq event scheduler (deferred clock).  A raw ``obj.clock += latency``
— the pattern the refactor removed — silently bypasses that ownership:
standalone it happens to work, but under a scheduler the charge is
lost, so the bug only shows up as impossibly fast transactions in
``--level txn`` runs.

This rule bans direct arithmetic mutation of a ``.clock`` attribute:

* any augmented assignment (``+=``, ``-=``, ...) targeting ``<expr>.clock``;
* a plain assignment to ``<expr>.clock`` whose right-hand side is
  arithmetic (a ``BinOp``/``UnaryOp`` or a bare numeric constant),
  i.e. manual clock math rather than object wiring.

Assigning a clock *object* (``self.clock = ScalarClock()``-style
wiring, or aliasing ``a.clock = b.clock``) stays legal, as does the
:mod:`repro.storage.clock` module itself, whose whole job is mutating
the underlying counters.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, LintModule, Rule


def _is_arithmetic(value: ast.expr) -> bool:
    """Whether an assigned value is clock math rather than wiring."""
    if isinstance(value, (ast.BinOp, ast.UnaryOp)):
        return True
    return isinstance(value, ast.Constant) and isinstance(
        value.value, (int, float)
    )


class ClockDisciplineRule(Rule):
    """Ban raw arithmetic on ``.clock`` attributes."""

    id = "clock-discipline"
    description = (
        "simulated time moves via Clock.advance()/sync_to(); direct "
        "`obj.clock += ...` arithmetic bypasses the clock owner and "
        "breaks scheduled execution"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Flag arithmetic mutation of ``.clock`` attributes."""
        if module.module == "repro.storage.clock":
            # The clock implementation itself owns the counters.
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr == "clock"
            ):
                yield self.finding(
                    module, node,
                    "mutates a `.clock` attribute arithmetically; charge "
                    "latency via Clock.advance() (or sync_to) so the same "
                    "code runs under the hostq scheduler",
                )
            elif isinstance(node, ast.Assign) and _is_arithmetic(node.value):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "clock"
                    ):
                        yield self.finding(
                            module, node,
                            "assigns computed time to a `.clock` attribute; "
                            "move the arithmetic into Clock.advance()/"
                            "sync_to() so time has one owner",
                        )
                        break
