"""ispp-safety: flash cell buffers are only touched inside ``repro.flash``.

The paper's physical invariant (ISPP may only add charge, i.e. flip
bits 1 -> 0) is enforced by :meth:`repro.flash.page.FlashPage.program`.
Any code that reaches into ``page.data`` / ``page.oob`` directly —
whether to mutate *or* to peek at raw cells — bypasses that gate, so
outside the ``repro.flash`` package every subscript of, or assignment
to, an attribute named ``data``/``oob`` is a finding.  Host-side code
must use the accessors (``read``, ``read_slice``, ``is_erased_range``)
or the ``program``/``write_delta`` primitives.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..engine import Finding, LintModule, Rule

#: Attributes holding raw flash cells on FlashPage.
_BUFFER_ATTRS = frozenset({"data", "oob"})


def _buffer_attribute(node: ast.AST) -> ast.Attribute | None:
    """``node`` when it is an ``<expr>.data`` / ``<expr>.oob`` access."""
    if isinstance(node, ast.Attribute) and node.attr in _BUFFER_ATTRS:
        return node
    return None


class IsppSafetyRule(Rule):
    """No direct flash-buffer access outside ``repro.flash``."""

    id = "ispp-safety"
    description = (
        "flash page buffers (.data/.oob) may only be touched inside "
        "repro.flash; use read accessors and program/write_delta"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Flag raw ``.data``/``.oob`` buffer access outside repro.flash."""
        if module.in_package("repro.flash"):
            return
        yield from self._scan(module)

    def _scan(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript):
                target = _buffer_attribute(node.value)
                if target is not None:
                    verb = (
                        "mutates"
                        if isinstance(node.ctx, (ast.Store, ast.Del))
                        else "reads"
                    )
                    yield self.finding(
                        module, node,
                        f"{verb} raw flash buffer via `.{target.attr}[...]`; "
                        "use FlashPage.read_slice/is_erased_range or "
                        "program/write_delta",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for assigned in targets:
                    target = _buffer_attribute(assigned)
                    if target is not None:
                        yield self.finding(
                            module, assigned,
                            f"assigns raw flash buffer `.{target.attr}`; "
                            "cell content changes only via ISPP program or erase",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and _buffer_attribute(func.value) is not None
                    and func.attr in {"append", "extend", "insert", "clear", "pop"}
                ):
                    yield self.finding(
                        module, node,
                        f"calls mutator `.{func.attr}()` on a raw flash buffer; "
                        "cell content changes only via ISPP program or erase",
                    )
