"""determinism: no wall clocks, no ambient randomness in ``src/repro``.

Every run of the simulator must replay bit-identically from its seed:
the device clock is simulated (``now`` parameters), and all randomness
flows through an injected ``random.Random(seed)`` instance (workload
drivers, the fault injector).  This rule bans the two ways ambient
nondeterminism sneaks in:

* wall-clock reads — ``time.time()`` / ``time.monotonic()`` /
  ``time.perf_counter()`` (and ``_ns`` variants), ``datetime.now()``,
  ``datetime.utcnow()``, ``date.today()``;
* module-level RNG — any ``random.<fn>()`` call on the ``random``
  module itself (``random.random()``, ``random.choice()``, ...), which
  draws from the shared, process-global generator.  Constructing
  ``random.Random(seed)`` / ``random.SystemRandom()`` is what the
  injection pattern looks like and stays allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, LintModule, Rule

#: Banned ``time.<fn>`` calls (wall or process clocks).
_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})

#: Banned ``datetime``/``date`` constructors of "now".
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: ``random.<name>`` attributes that are fine: seeded-generator classes.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})


def _attribute_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a pure chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class DeterminismRule(Rule):
    """Ban wall-clock reads and the process-global RNG."""

    id = "determinism"
    description = (
        "no time.time/datetime.now/module-level random.* in src/repro; "
        "inject random.Random(seed) and use the simulated clock"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Flag wall-clock and process-global-RNG call sites."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attribute_chain(node.func)
            if len(chain) < 2:
                continue
            base, func = chain[-2], chain[-1]
            if base == "time" and func in _TIME_FUNCS:
                yield self.finding(
                    module, node,
                    f"calls wall/process clock `time.{func}()`; use the "
                    "simulated `now` clock so runs replay deterministically",
                )
            elif base in {"datetime", "date"} and func in _DATETIME_FUNCS:
                yield self.finding(
                    module, node,
                    f"calls `{base}.{func}()`; wall-clock timestamps make "
                    "runs unreproducible — thread times through parameters",
                )
            elif base == "random" and func not in _RANDOM_ALLOWED:
                yield self.finding(
                    module, node,
                    f"draws from the process-global RNG via `random.{func}()`; "
                    "all randomness must flow through an injected "
                    "random.Random(seed)",
                )
