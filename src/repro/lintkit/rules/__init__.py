"""The iplint rule registry.

Each rule lives in its own module; :func:`default_rules` instantiates
the set the CLI, the CI job and the regression test run over
``src/repro``.  Adding a rule means: implement a
:class:`~repro.lintkit.engine.Rule` subclass, import it here, append it
to :data:`RULE_CLASSES`, and give it passing/failing fixtures in
``tests/test_lintkit_rules.py``.

With the flow pass enabled (the default), the flow rules from
:mod:`repro.lintkit.flow.rules` join the set and the dominator-based
``telemetry-guard`` replaces the syntactic line-span heuristic; with
``flow=False`` the original purely syntactic seven run alone.
"""

from __future__ import annotations

from ..engine import Rule
from .clock import ClockDisciplineRule
from .determinism import DeterminismRule
from .exceptions import ExceptionDisciplineRule
from .ispp import IsppSafetyRule
from .layering import DeviceLayeringRule
from .telemetry import CounterNamingRule, TelemetryGuardRule

__all__ = [
    "RULE_CLASSES",
    "ClockDisciplineRule",
    "CounterNamingRule",
    "DeterminismRule",
    "DeviceLayeringRule",
    "ExceptionDisciplineRule",
    "IsppSafetyRule",
    "TelemetryGuardRule",
    "default_rules",
    "rule_by_id",
]

#: Every shipped rule class, in report order.
RULE_CLASSES: tuple[type[Rule], ...] = (
    IsppSafetyRule,
    DeviceLayeringRule,
    DeterminismRule,
    TelemetryGuardRule,
    CounterNamingRule,
    ExceptionDisciplineRule,
    ClockDisciplineRule,
)


def default_rules(flow: bool = True) -> list[Rule]:
    """Fresh instances of the default rule set.

    ``flow=True`` (the default) adds the flow-sensitive rules and
    swaps the syntactic :class:`TelemetryGuardRule` for its
    dominator-based replacement (same rule id, precise semantics).
    """
    if not flow:
        return [cls() for cls in RULE_CLASSES]
    from ..flow.rules import FLOW_RULE_CLASSES  # late: avoids a cycle

    rules: list[Rule] = [
        cls() for cls in RULE_CLASSES if cls is not TelemetryGuardRule
    ]
    rules.extend(cls() for cls in FLOW_RULE_CLASSES)
    return rules


def rule_by_id(rule_id: str) -> Rule:
    """Instantiate one rule by its id (raises KeyError when unknown).

    Syntactic rules win a tie — ``telemetry-guard`` resolves to the
    original implementation, matching ``--no-flow`` behaviour.
    """
    from ..flow.rules import FLOW_RULE_CLASSES  # late: avoids a cycle

    for cls in RULE_CLASSES + FLOW_RULE_CLASSES:
        if cls.id == rule_id:
            return cls()
    raise KeyError(f"no lint rule with id {rule_id!r}")
