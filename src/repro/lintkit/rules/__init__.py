"""The iplint rule registry.

Each rule lives in its own module; :func:`default_rules` instantiates
the full set the CLI, the CI job and the regression test run over
``src/repro``.  Adding a rule means: implement a
:class:`~repro.lintkit.engine.Rule` subclass, import it here, append it
to :data:`RULE_CLASSES`, and give it passing/failing fixtures in
``tests/test_lintkit_rules.py``.
"""

from __future__ import annotations

from ..engine import Rule
from .clock import ClockDisciplineRule
from .determinism import DeterminismRule
from .exceptions import ExceptionDisciplineRule
from .ispp import IsppSafetyRule
from .layering import DeviceLayeringRule
from .telemetry import CounterNamingRule, TelemetryGuardRule

__all__ = [
    "RULE_CLASSES",
    "ClockDisciplineRule",
    "CounterNamingRule",
    "DeterminismRule",
    "DeviceLayeringRule",
    "ExceptionDisciplineRule",
    "IsppSafetyRule",
    "TelemetryGuardRule",
    "default_rules",
    "rule_by_id",
]

#: Every shipped rule class, in report order.
RULE_CLASSES: tuple[type[Rule], ...] = (
    IsppSafetyRule,
    DeviceLayeringRule,
    DeterminismRule,
    TelemetryGuardRule,
    CounterNamingRule,
    ExceptionDisciplineRule,
    ClockDisciplineRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of the full rule set."""
    return [cls() for cls in RULE_CLASSES]


def rule_by_id(rule_id: str) -> Rule:
    """Instantiate one rule by its id (raises KeyError when unknown)."""
    for cls in RULE_CLASSES:
        if cls.id == rule_id:
            return cls()
    raise KeyError(f"no lint rule with id {rule_id!r}")
