"""device-layering: the host stack programs against ``FlashDevice`` only.

PR 2's architectural invariant: everything above the device layer (the
IPA manager, the storage engine, workloads, the CLI) depends on the
:class:`repro.ftl.device.FlashDevice` protocol, never on a concrete
controller.  Outside ``repro.ftl`` and ``repro.testbed`` (the two
places allowed to know backends exist) it is a finding to

* import the concrete controller classes ``NoFTL`` / ``BlockSSD`` /
  ``ShardedDevice``, or
* import from their home modules (``repro.ftl.noftl``,
  ``repro.ftl.blockdev``, ``repro.ftl.sharded``) at all — factories
  like ``single_region_device`` are re-exported by ``repro.ftl``.

Relative imports are resolved against the module's package so
``from ..ftl.noftl import ...`` is caught too.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, LintModule, Rule

#: Concrete controller class names (protocol-breaking to import).
CONCRETE_CLASSES = frozenset({"NoFTL", "BlockSSD", "ShardedDevice"})

#: Modules that define concrete controllers.
CONCRETE_MODULES = frozenset({
    "repro.ftl.noftl",
    "repro.ftl.blockdev",
    "repro.ftl.sharded",
})

#: Packages allowed to name concrete backends.
ALLOWED_PACKAGES = ("repro.ftl", "repro.testbed")


def resolve_relative(module: LintModule, node: ast.ImportFrom) -> str:
    """Absolute dotted path of an ``ImportFrom`` target.

    ``level`` counts leading dots: one dot is the current package, each
    further dot climbs one package.  Mirrors ``importlib._bootstrap``'s
    resolution, minus error handling we do not need for linting.
    """
    if node.level == 0:
        return node.module or ""
    package_parts = module.module.split(".")
    # A module's own name is not a package level; drop it first (for
    # packages, module names here never end in __init__, see engine).
    base = package_parts[: len(package_parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


class DeviceLayeringRule(Rule):
    """No concrete-backend imports above the device layer."""

    id = "device-layering"
    description = (
        "outside repro.ftl and repro.testbed, import the FlashDevice "
        "protocol (repro.ftl.device), never a concrete controller"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Flag concrete-backend imports outside the allowed packages."""
        if module.in_package(*ALLOWED_PACKAGES) or module.module == "repro":
            # repro/__init__ re-exports subpackages wholesale; the
            # lintkit rules may also name the classes in docs/tests.
            return
        if module.in_package("repro.lintkit"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in CONCRETE_MODULES:
                        yield self.finding(
                            module, node,
                            f"imports concrete backend module `{alias.name}`; "
                            "program against repro.ftl.device.FlashDevice",
                        )
            elif isinstance(node, ast.ImportFrom):
                origin = resolve_relative(module, node)
                if origin in CONCRETE_MODULES:
                    yield self.finding(
                        module, node,
                        f"imports from concrete backend module `{origin}`; "
                        "factories are re-exported by repro.ftl",
                    )
                    continue
                for alias in node.names:
                    if alias.name in CONCRETE_CLASSES:
                        yield self.finding(
                            module, node,
                            f"imports concrete controller `{alias.name}`; "
                            "only repro.ftl and repro.testbed may name backends",
                        )
