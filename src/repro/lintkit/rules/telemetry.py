"""telemetry-guard and counter-naming: telemetry discipline rules.

**telemetry-guard** — the telemetry subsystem's contract (DESIGN.md §7)
is that a run with no subscriber allocates nothing: event objects are
built only behind an ``events.active`` check.  Every ``<bus>.emit(...)``
call site must therefore be guarded, either lexically::

    if self.events.active:
        self.events.emit(HostIOEvent(...))

or by an early bail-out at the top of the function::

    if not self.events.active:
        return
    self.events.emit(HostIOEvent(...))

**counter-naming** — registry metric names follow ``{layer}_{noun}``:
the first segment names the owning layer (``device_``, ``blockssd_``,
``ipa_``, ``gc_``, ``flash_``, ``buffer_``, ...), optionally preceded
by a composite-device prefix (``shard<i>_`` or a runtime ``{prefix}``
slot), and the rest is lower_snake.  The rule checks every literal or
f-string name passed to ``.counter()`` / ``.gauge()`` / ``.histogram()``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..engine import Finding, LintModule, Rule

#: Marker standing in for an f-string ``{...}`` interpolation slot.
_SLOT = "\x00"

#: Layer vocabulary for the leading metric-name segment.
METRIC_LAYERS = frozenset({
    "device", "blockssd", "ipa", "host", "gc", "flash",
    "buffer", "chip", "wear", "flush", "engine", "wal",
    "crashkit", "hostq", "txn",
})

_LAYER_HEAD_RE = re.compile(
    r"^(shard\d+_)?(" + "|".join(sorted(METRIC_LAYERS)) + r")_"
)
_CHARSET_RE = re.compile(r"^[a-z0-9_]*$")


def _mentions_active(node: ast.AST) -> bool:
    """Whether a test expression references an ``active`` flag."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "active":
            return True
        if isinstance(sub, ast.Name) and sub.id == "active":
            return True
    return False


def _terminates(body: list[ast.stmt]) -> bool:
    """Whether a block ends by leaving the enclosing function/loop."""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class TelemetryGuardRule(Rule):
    """Event emission must sit behind an ``events.active`` check."""

    id = "telemetry-guard"
    description = (
        "telemetry .emit() calls must be guarded by an events.active "
        "check so the no-subscriber path allocates nothing"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Flag unguarded ``.emit()`` calls, function by function."""
        if module.module == "repro.telemetry.events":
            # The bus itself: emit() is defined (and tested) here.
            return
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, func)

    def _check_function(self, module, func) -> Iterable[Finding]:
        guarded_lines = self._guarded_spans(func)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and not self._is_guarded(node, guarded_lines, func)
            ):
                yield self.finding(
                    module, node,
                    "emits a telemetry event outside an `events.active` "
                    "guard; the disabled path must stay allocation-free",
                )

    def _guarded_spans(self, func) -> list[tuple[int, int]]:
        """Line spans lying inside an ``if ...active...:`` body."""
        spans: list[tuple[int, int]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.If) and _mentions_active(node.test):
                is_bailout = (
                    isinstance(node.test, ast.UnaryOp)
                    and isinstance(node.test.op, ast.Not)
                    and _terminates(node.body)
                )
                if is_bailout:
                    # `if not ...active: return` — everything after the
                    # guard (to the end of the function) is protected.
                    spans.append((node.end_lineno or node.lineno,
                                  func.end_lineno or node.lineno))
                else:
                    first, last = node.body[0], node.body[-1]
                    spans.append((first.lineno, last.end_lineno or last.lineno))
        return spans

    @staticmethod
    def _is_guarded(node: ast.Call, spans, func) -> bool:
        line = node.lineno
        return any(start <= line <= end for start, end in spans)


class CounterNamingRule(Rule):
    """Registry metric names must follow ``{layer}_{noun}``."""

    id = "counter-naming"
    description = (
        "metric names are lower_snake and start with their layer "
        "(device_, blockssd_, ipa_, gc_, flash_, buffer_, ...), with an "
        "optional shard<i>_/{prefix} slot in front"
    )

    _METHODS = frozenset({"counter", "gauge", "histogram"})

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Validate literal metric names at registration call sites."""
        if module.module == "repro.telemetry.metrics":
            # The primitives themselves take arbitrary names.
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._METHODS
                and node.args
            ):
                continue
            pattern = self._literal_pattern(node.args[0])
            if pattern is None:
                continue  # dynamically built name: not statically checkable
            problem = self._violation(pattern)
            if problem is not None:
                shown = pattern.replace(_SLOT, "{…}")
                yield self.finding(
                    module, node,
                    f"metric name `{shown}` {problem}; expected "
                    "[shard<i>_|{prefix}]<layer>_<lower_snake_noun>",
                )

    @staticmethod
    def _literal_pattern(arg: ast.expr) -> str | None:
        """Literal/f-string name with ``{...}`` slots marked, else None."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.JoinedStr):
            parts: list[str] = []
            for value in arg.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    parts.append(value.value)
                else:
                    parts.append(_SLOT)
            return "".join(parts)
        return None

    @staticmethod
    def _violation(pattern: str) -> str | None:
        """Describe how ``pattern`` breaks the convention (None = ok)."""
        head = pattern
        if head.startswith(_SLOT):
            head = head[1:]  # runtime prefix slot (e.g. shard<i>_)
        literal_head = head.split(_SLOT, 1)[0]
        for chunk in pattern.split(_SLOT):
            if not _CHARSET_RE.match(chunk):
                return "is not lower_snake ([a-z0-9_])"
        if not _LAYER_HEAD_RE.match(literal_head):
            return "does not start with a known layer segment"
        return None
