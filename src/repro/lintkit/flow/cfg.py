"""Per-function control-flow graphs for the flow-sensitive lint pass.

:func:`build_cfg` lowers one function body (or a module's top-level
code) into basic blocks of statements connected by control-flow edges.
The builder covers the constructs the repro tree actually uses:

* ``if``/``elif``/``else`` — every branch gets its **own entry block**,
  synthesized even when the branch is empty, so "execution took this
  edge" is a dominance fact (the guarded-telemetry rule rests on it);
* ``while``/``for`` with ``else``, ``break`` and ``continue``
  (``break`` skips the ``else`` clause, ``continue`` re-enters the
  header — the back edge is real, so "after" includes the next
  iteration);
* ``try``/``except``/``else``/``finally`` — conservatively: every
  block of the ``try`` suite may raise into every handler, all normal
  and handler exits funnel through the ``finally`` suite;
* ``with`` (linear), ``match`` (one arm per case), ``return``/``raise``
  (edges to the exit block, no fall-through);
* generator suspension points: a statement containing a ``yield`` or
  ``yield from`` *terminates its block*, so every yield is the last
  statement of some block and "post-yield" is plain reachability.

On top of the graph the module provides the three analyses the flow
rules share: immediate-style :func:`dominators` (iterative dataflow),
:func:`reaching_definitions` for function-local names, and the
statement-granular path scans :func:`stmts_after` / :func:`stmts_before`
("what can run between A and B without passing a blocker") used by the
crash-window and yield-discipline rules.

Nested function/class definitions are *not* descended into — each
scope gets its own CFG; the ``def`` statement itself is an ordinary
binding in the enclosing scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "BasicBlock",
    "Branch",
    "CFG",
    "DefSite",
    "YieldPoint",
    "build_cfg",
    "dominators",
    "own_nodes",
    "reaching_definitions",
    "stmts_after",
    "stmts_before",
    "yields_in_scope",
]

#: AST nodes opening a nested scope the builder must not descend into.
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _walk_scope(node: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` confined to one scope (skips nested defs/lambdas)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _NESTED_SCOPES):
                continue
            stack.append(child)


def _header_exprs(stmt: ast.stmt) -> list[ast.expr] | None:
    """The expressions a *compound* statement evaluates itself.

    The CFG records a compound statement (``if``, ``while``, ...) in
    the block where its header executes; the suites become separate
    statements in other blocks.  Analyses attributing work to the
    header must therefore look only at these expressions — ``None``
    means the statement is simple and owns its whole subtree.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs: list[ast.expr] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        return exprs
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.Try, *_NESTED_SCOPES)):
        return []
    return None


def own_nodes(stmt: ast.stmt) -> Iterable[ast.AST]:
    """AST nodes belonging to this statement *at its CFG position*.

    For simple statements: the whole subtree minus nested scopes.  For
    compound statements: only the header expressions (their suites are
    recorded as separate statements elsewhere in the graph).
    """
    headers = _header_exprs(stmt)
    roots: Iterable[ast.AST] = [stmt] if headers is None else headers
    for root in roots:
        yield from _walk_scope(root)


def yields_in_scope(stmt: ast.stmt) -> list[ast.expr]:
    """Yield/YieldFrom expressions this statement itself evaluates."""
    return [
        node
        for node in own_nodes(stmt)
        if isinstance(node, (ast.Yield, ast.YieldFrom))
    ]


class BasicBlock:
    """A straight-line run of statements with one entry and one exit."""

    __slots__ = ("index", "stmts", "succ", "pred")

    def __init__(self, index: int) -> None:
        self.index = index
        self.stmts: list[ast.stmt] = []
        self.succ: list["BasicBlock"] = []
        self.pred: list["BasicBlock"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [getattr(s, "lineno", "?") for s in self.stmts]
        return f"B{self.index}{lines}->{[b.index for b in self.succ]}"


@dataclass(frozen=True)
class Branch:
    """One two-way branch (``if``/``while`` test) with labelled edges.

    ``true_entry``/``false_entry`` are the synthetic blocks control
    enters when the test evaluates truthy/falsy; a block dominated by
    ``true_entry`` provably runs only when ``test`` held.
    """

    stmt: ast.stmt
    test: ast.expr
    cond: BasicBlock
    true_entry: BasicBlock
    false_entry: BasicBlock


@dataclass(frozen=True)
class YieldPoint:
    """One generator suspension point (always the last stmt of a block).

    ``bound`` is True when the yielded value's completion is captured
    (``x = yield cmd`` / ``x = yield from prog()``); a *bare* yield
    discards what the driver sends back.
    """

    node: ast.expr
    stmt: ast.stmt
    block: BasicBlock
    bound: bool


@dataclass(frozen=True)
class DefSite:
    """One definition of a local name reaching-definitions tracks.

    ``value`` is the defining expression when the binding is a simple
    single-target assignment (``name = expr``), else ``None`` — an
    opaque definition (loop target, augmented assignment, parameter,
    unpacking) that analyses must treat as "could be anything".
    """

    name: str
    stmt: ast.stmt | None
    value: ast.expr | None


@dataclass
class CFG:
    """One scope's control-flow graph plus rule-facing indexes."""

    scope: ast.AST
    blocks: list[BasicBlock]
    entry: BasicBlock
    exit: BasicBlock
    branches: list[Branch]
    yields: list[YieldPoint]
    #: id(stmt) -> (owning block, index within the block).
    position: dict[int, tuple[BasicBlock, int]]
    _dominators: dict[int, frozenset[int]] | None = field(default=None, repr=False)

    def block_of(self, stmt: ast.stmt) -> BasicBlock | None:
        """The block holding ``stmt`` (None for unrecorded statements)."""
        entry = self.position.get(id(stmt))
        return entry[0] if entry else None

    def dominators(self) -> dict[int, frozenset[int]]:
        """Block index -> indexes of all its dominators (cached)."""
        if self._dominators is None:
            self._dominators = dominators(self)
        return self._dominators

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether every entry-to-``b`` path passes through ``a``."""
        return a.index in self.dominators().get(b.index, frozenset())


class _Builder:
    """Recursive statement-list lowering shared by all scope kinds."""

    def __init__(self, scope: ast.AST) -> None:
        self.scope = scope
        self.blocks: list[BasicBlock] = []
        self.branches: list[Branch] = []
        self.yields: list[YieldPoint] = []
        self.position: dict[int, tuple[BasicBlock, int]] = {}
        self.entry = self.new_block()
        self.exit = self.new_block()
        #: (continue target, break target) per enclosing loop.
        self.loops: list[tuple[BasicBlock, BasicBlock]] = []
        #: Handler/finally entry blocks exceptions may branch to.
        self.raise_targets: list[list[BasicBlock]] = []

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    @staticmethod
    def link(src: BasicBlock | None, dst: BasicBlock) -> None:
        if src is not None and dst not in src.succ:
            src.succ.append(dst)
            dst.pred.append(src)

    # ------------------------------------------------------------------
    # Statement lowering
    # ------------------------------------------------------------------

    def add_stmt(self, block: BasicBlock, stmt: ast.stmt) -> BasicBlock:
        """Record one simple statement; splits the block after a yield."""
        block.stmts.append(stmt)
        self.position[id(stmt)] = (block, len(block.stmts) - 1)
        for target in self.raise_targets:
            for handler_entry in target:
                self.link(block, handler_entry)
        yields = yields_in_scope(stmt)
        if not yields:
            return block
        bound = self._binds_yield(stmt)
        for node in yields:
            self.yields.append(YieldPoint(node, stmt, block, bound))
        follow = self.new_block()
        self.link(block, follow)
        return follow

    @staticmethod
    def _binds_yield(stmt: ast.stmt) -> bool:
        """Whether the statement captures the yield's sent value."""
        value = getattr(stmt, "value", None)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and isinstance(
            value, (ast.Yield, ast.YieldFrom)
        ):
            return True
        if isinstance(stmt, ast.Expr) and isinstance(value, ast.NamedExpr):
            return isinstance(value.value, (ast.Yield, ast.YieldFrom))
        return False

    def build_body(
        self, body: Sequence[ast.stmt], block: BasicBlock | None
    ) -> BasicBlock | None:
        """Lower a suite starting in ``block``; returns the fall-through
        block (None when every path left the suite)."""
        for stmt in body:
            if block is None:
                # Unreachable trailing code: park it in a fresh block so
                # positions exist, but leave it disconnected.
                block = self.new_block()
            block = self.build_stmt(stmt, block)
        return block

    def build_stmt(self, stmt: ast.stmt, block: BasicBlock) -> BasicBlock | None:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, block)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, block)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, block)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            block = self.add_stmt(block, stmt)
            return self.build_body(stmt.body, block)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, block)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            block = self.add_stmt(block, stmt)
            if block is not None:
                self.link(block, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            block = self.add_stmt(block, stmt)
            if self.loops:
                self.link(block, self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            block = self.add_stmt(block, stmt)
            if self.loops:
                self.link(block, self.loops[-1][0])
            return None
        return self.add_stmt(block, stmt)

    def _build_if(self, stmt: ast.If, block: BasicBlock) -> BasicBlock:
        cond = self.add_stmt(block, stmt)
        true_entry = self.new_block()
        false_entry = self.new_block()
        self.link(cond, true_entry)
        self.link(cond, false_entry)
        self.branches.append(Branch(stmt, stmt.test, cond, true_entry, false_entry))
        body_end = self.build_body(stmt.body, true_entry)
        else_end = self.build_body(stmt.orelse, false_entry)
        join = self.new_block()
        self.link(body_end, join)
        self.link(else_end, join)
        return join

    def _build_loop(self, stmt: ast.stmt, block: BasicBlock) -> BasicBlock:
        header = self.new_block()
        self.link(block, header)
        header = self.add_stmt(header, stmt)
        body_entry = self.new_block()
        exit_entry = self.new_block()
        self.link(header, body_entry)
        self.link(header, exit_entry)
        if isinstance(stmt, ast.While):
            self.branches.append(
                Branch(stmt, stmt.test, header, body_entry, exit_entry)
            )
        join = self.new_block()
        self.loops.append((header, join))
        body_end = self.build_body(stmt.body, body_entry)
        self.loops.pop()
        self.link(body_end, header)  # back edge
        # The else suite runs only on normal exhaustion; break jumps
        # straight to the join.
        else_end = self.build_body(stmt.orelse, exit_entry)
        self.link(else_end, join)
        return join

    def _build_try(self, stmt: ast.Try, block: BasicBlock) -> BasicBlock:
        block = self.add_stmt(block, stmt)
        handler_entries = [self.new_block() for _ in stmt.handlers]
        final_entry = self.new_block() if stmt.finalbody else None
        targets = list(handler_entries)
        if final_entry is not None:
            targets.append(final_entry)
        body_entry = self.new_block()
        self.link(block, body_entry)
        self.raise_targets.append(targets)
        body_end = self.build_body(stmt.body, body_entry)
        else_end = self.build_body(stmt.orelse, body_end)
        self.raise_targets.pop()
        join = self.new_block()
        exits = [else_end]
        for handler, entry in zip(stmt.handlers, handler_entries):
            exits.append(self.build_body(handler.body, entry))
        if final_entry is not None:
            for end in exits:
                self.link(end, final_entry)
            final_end = self.build_body(stmt.finalbody, final_entry)
            # The finally suite also runs on the exceptional path that
            # re-raises past this statement.
            if final_end is not None:
                self.link(final_end, self.exit)
            self.link(final_end, join)
        else:
            for end in exits:
                self.link(end, join)
        return join

    def _build_match(self, stmt: ast.Match, block: BasicBlock) -> BasicBlock:
        subject = self.add_stmt(block, stmt)
        join = self.new_block()
        for case in stmt.cases:
            entry = self.new_block()
            self.link(subject, entry)
            self.link(self.build_body(case.body, entry), join)
        self.link(subject, join)  # no case matched
        return join


def build_cfg(scope: ast.AST) -> CFG:
    """Lower one scope (function, module, or statement list owner).

    ``scope`` is a ``FunctionDef``/``AsyncFunctionDef``, ``Module``, or
    any node with a ``body`` list of statements.
    """
    builder = _Builder(scope)
    body = scope.body if hasattr(scope, "body") else []
    end = builder.build_body(body, builder.entry)
    builder.link(end, builder.exit)
    return CFG(
        scope=scope,
        blocks=builder.blocks,
        entry=builder.entry,
        exit=builder.exit,
        branches=builder.branches,
        yields=builder.yields,
        position=builder.position,
    )


# ----------------------------------------------------------------------
# Dominators
# ----------------------------------------------------------------------


def dominators(cfg: CFG) -> dict[int, frozenset[int]]:
    """All-dominators sets by iterative dataflow over reachable blocks.

    Unreachable blocks (parked dead code) get empty sets — they are
    dominated by nothing and dominate nothing.
    """
    reachable: list[BasicBlock] = []
    seen = {cfg.entry.index}
    queue = [cfg.entry]
    while queue:
        block = queue.pop()
        reachable.append(block)
        for succ in block.succ:
            if succ.index not in seen:
                seen.add(succ.index)
                queue.append(succ)
    every = frozenset(b.index for b in reachable)
    dom: dict[int, frozenset[int]] = {
        b.index: every for b in reachable
    }
    dom[cfg.entry.index] = frozenset({cfg.entry.index})
    changed = True
    while changed:
        changed = False
        for block in reachable:
            if block is cfg.entry:
                continue
            preds = [p for p in block.pred if p.index in seen]
            inter: frozenset[int] | None = None
            for pred in preds:
                inter = dom[pred.index] if inter is None else inter & dom[pred.index]
            new = (inter or frozenset()) | {block.index}
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    for block in cfg.blocks:
        dom.setdefault(block.index, frozenset())
    return dom


# ----------------------------------------------------------------------
# Reaching definitions (function-local names)
# ----------------------------------------------------------------------

_UNKNOWN = DefSite("?", None, None)


def _definitions_of(stmt: ast.stmt) -> list[DefSite]:
    """The local-name definitions one statement performs."""
    defs: list[DefSite] = []

    def bind_target(target: ast.expr, value: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            defs.append(DefSite(target.id, stmt, value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind_target(element, None)
        elif isinstance(target, ast.Starred):
            bind_target(target.value, None)
        # Attribute/subscript targets are not local bindings.

    if isinstance(stmt, ast.Assign):
        simple = len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name)
        for target in stmt.targets:
            bind_target(target, stmt.value if simple else None)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        bind_target(stmt.target, stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        bind_target(stmt.target, None)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        bind_target(stmt.target, None)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                bind_target(item.optional_vars, None)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            name = (alias.asname or alias.name).split(".")[0]
            defs.append(DefSite(name, stmt, None))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        defs.append(DefSite(stmt.name, stmt, None))
    # Walrus assignments anywhere in the statement's own expressions.
    for node in own_nodes(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            defs.append(DefSite(node.target.id, stmt, node.value))
    return defs


def reaching_definitions(cfg: CFG) -> dict[int, dict[str, set[DefSite]]]:
    """Per-block IN sets: which definitions of each local name reach it.

    Parameters of a function scope reach the entry as opaque defs.
    Names never defined in the scope simply have no entry — callers
    treat "no reaching def" as not-provable.
    """
    gen: dict[int, dict[str, set[DefSite]]] = {}
    for block in cfg.blocks:
        current: dict[str, set[DefSite]] = {}
        for stmt in block.stmts:
            for site in _definitions_of(stmt):
                current[site.name] = {site}
        gen[block.index] = current

    seed: dict[str, set[DefSite]] = {}
    args = getattr(cfg.scope, "args", None)
    if args is not None:
        names = [a.arg for a in args.args + args.kwonlyargs + args.posonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        for name in names:
            seed[name] = {DefSite(name, None, None)}

    in_sets: dict[int, dict[str, set[DefSite]]] = {
        block.index: {} for block in cfg.blocks
    }
    in_sets[cfg.entry.index] = {k: set(v) for k, v in seed.items()}
    out_sets: dict[int, dict[str, set[DefSite]]] = {}

    def flow_out(index: int) -> dict[str, set[DefSite]]:
        merged = {k: set(v) for k, v in in_sets[index].items()}
        for name, sites in gen[index].items():
            merged[name] = set(sites)
        return merged

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            out_sets[block.index] = flow_out(block.index)
        for block in cfg.blocks:
            if block is cfg.entry:
                continue
            merged: dict[str, set[DefSite]] = {}
            for pred in block.pred:
                for name, sites in out_sets.get(pred.index, {}).items():
                    merged.setdefault(name, set()).update(sites)
            if merged != in_sets[block.index]:
                in_sets[block.index] = merged
                changed = True
    return in_sets


# ----------------------------------------------------------------------
# Statement-granular path scans
# ----------------------------------------------------------------------


def _scan(
    cfg: CFG,
    sources: Iterable[ast.stmt],
    stoppers: Iterable[ast.stmt],
    forward: bool,
) -> set[int]:
    """Statement ids reachable from ``sources`` without crossing a
    stopper, walking ``succ`` (forward) or ``pred`` (backward).

    The sources themselves are not included; a stopper terminates its
    path *at* the stopper (the stopper is not reported either).
    """
    stop_ids = {id(s) for s in stoppers}
    reached: set[int] = set()
    #: Blocks whose full statement list was already scanned.
    visited: set[int] = set()
    queue: list[tuple[BasicBlock, int]] = []

    def scan_block(block: BasicBlock, start: int) -> None:
        """Scan statements from ``start``; enqueue neighbours if the
        scan runs off the end of the block without hitting a stopper."""
        indices = (
            range(start, len(block.stmts))
            if forward
            else range(start, -1, -1)
        )
        for i in indices:
            stmt = block.stmts[i]
            if id(stmt) in stop_ids:
                return
            reached.add(id(stmt))
        neighbours = block.succ if forward else block.pred
        for other in neighbours:
            if other.index not in visited:
                visited.add(other.index)
                queue.append((other, 0 if forward else len(other.stmts) - 1))

    for source in sources:
        entry = cfg.position.get(id(source))
        if entry is None:
            continue
        block, index = entry
        scan_block(block, index + 1 if forward else index - 1)
    while queue:
        block, start = queue.pop()
        scan_block(block, start)
    return reached


def stmts_after(
    cfg: CFG, sources: Iterable[ast.stmt], stoppers: Iterable[ast.stmt] = ()
) -> set[int]:
    """ids of statements on some path after a source, before a stopper."""
    return _scan(cfg, sources, stoppers, forward=True)


def stmts_before(
    cfg: CFG, sources: Iterable[ast.stmt], stoppers: Iterable[ast.stmt] = ()
) -> set[int]:
    """ids of statements on some path leading to a source, after any
    stopper (backward scan)."""
    return _scan(cfg, sources, stoppers, forward=False)
