"""Module-level call graph over one lint run's parsed modules.

The graph is deliberately *static and conservative-but-incomplete*: it
resolves the call shapes the layering rules need — plain names bound by
``def``/``import``, attribute calls on imported module aliases,
``self.method(...)`` within a class, and re-export chains
(``from repro.ftl import X`` where ``repro.ftl/__init__`` itself
imports ``X`` from a submodule).  Calls it cannot resolve (arbitrary
attribute chains, dynamic dispatch through protocol objects) produce no
edge; the transitive-layering rule therefore under-approximates
reachability and never flags on guesswork.

Built once per lint run and cached on the
:class:`~repro.lintkit.flow.base.FlowContext`, so every rule (and every
module's check) shares one graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from ..engine import LintModule

__all__ = ["CallGraph", "CallSite", "Definition", "build_call_graph"]


@dataclass(frozen=True)
class Definition:
    """One function or class definition the graph can land on."""

    module: str
    qualname: str
    node: ast.AST

    @property
    def key(self) -> str:
        """Stable node identity (``module:qualname``)."""
        return f"{self.module}:{self.qualname}"


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at ``node``."""

    caller: str
    callee: str
    node: ast.Call
    module: str


@dataclass
class _ModuleInfo:
    """Per-module symbol tables the resolver consults."""

    module: LintModule
    #: local name -> Definition (top-level defs; methods as Class.name).
    defs: dict[str, Definition] = field(default_factory=dict)
    #: local name -> (source module, symbol or None for module imports).
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)


class CallGraph:
    """Resolved definitions and call edges over a set of modules."""

    def __init__(self) -> None:
        #: Definition key -> Definition.
        self.definitions: dict[str, Definition] = {}
        #: Caller key -> outgoing call sites.
        self.edges: dict[str, list[CallSite]] = {}

    def add_edge(self, site: CallSite) -> None:
        """Record one call edge."""
        self.edges.setdefault(site.caller, []).append(site)

    def calls_from(self, key: str) -> list[CallSite]:
        """Outgoing edges of one definition."""
        return self.edges.get(key, [])

    def reach(
        self, start: str, skip_modules: Iterable[str] = ()
    ) -> dict[str, list[CallSite]]:
        """Every definition reachable from ``start``, with the chain.

        Returns ``{reached key: [edge, edge, ...]}`` — the list is one
        concrete call chain from ``start`` to the key.  Edges *into*
        modules matching a ``skip_modules`` prefix terminate traversal
        there (the callee is reported as reached, but not expanded):
        those are sanctioned composition roots.
        """
        skip = tuple(skip_modules)

        def skipped(module_name: str) -> bool:
            return any(
                module_name == prefix or module_name.startswith(prefix + ".")
                for prefix in skip
            )

        chains: dict[str, list[CallSite]] = {}
        queue: list[str] = [start]
        seen = {start}
        while queue:
            current = queue.pop()
            for site in self.calls_from(current):
                if site.callee in seen:
                    continue
                seen.add(site.callee)
                chains[site.callee] = chains.get(current, []) + [site]
                callee_module = site.callee.split(":", 1)[0]
                if site.callee in self.definitions and not skipped(callee_module):
                    queue.append(site.callee)
        return chains


def _collect_info(module: LintModule) -> _ModuleInfo:
    info = _ModuleInfo(module)
    for stmt in module.tree.body:
        _collect_stmt(info, stmt)
    return info


def _collect_stmt(info: _ModuleInfo, stmt: ast.stmt) -> None:
    module_name = info.module.module
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        definition = Definition(module_name, stmt.name, stmt)
        info.defs[stmt.name] = definition
    elif isinstance(stmt, ast.ClassDef):
        definition = Definition(module_name, stmt.name, stmt)
        info.defs[stmt.name] = definition
        for member in stmt.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = Definition(module_name, f"{stmt.name}.{member.name}", member)
                info.defs[f"{stmt.name}.{member.name}"] = method
    elif isinstance(stmt, ast.Import):
        for alias in stmt.names:
            info.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name,
                None,
            )
    elif isinstance(stmt, ast.ImportFrom):
        from ..rules.layering import resolve_relative  # late: avoids a cycle

        origin = resolve_relative(info.module, stmt)
        for alias in stmt.names:
            if alias.name == "*":
                continue
            info.imports[alias.asname or alias.name] = (origin, alias.name)
    elif isinstance(stmt, (ast.If, ast.Try)):
        # TYPE_CHECKING blocks and guarded imports still bind names.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                _collect_stmt(info, child)


class _Resolver:
    """Name -> definition resolution across the module set."""

    def __init__(self, infos: dict[str, _ModuleInfo]) -> None:
        self.infos = infos

    def resolve_symbol(
        self, module_name: str, symbol: str, _guard: frozenset = frozenset()
    ) -> str | None:
        """Definition key (or ``external:`` pseudo-key) of a symbol.

        Follows re-export chains through linted packages; returns
        ``None`` only for symbols that vanish into unparsed space with
        no module pedigree worth reporting.
        """
        if (module_name, symbol) in _guard:
            return None
        info = self.infos.get(module_name)
        if info is None:
            return f"external:{module_name}:{symbol}"
        if symbol in info.defs:
            return info.defs[symbol].key
        if symbol in info.imports:
            origin, original = info.imports[symbol]
            guard = _guard | {(module_name, symbol)}
            if original is None:
                return f"external:{origin}:"
            return self.resolve_symbol(origin, original, guard)
        return None


def build_call_graph(modules: Iterable[LintModule]) -> CallGraph:
    """Resolve definitions and call edges over the whole module set."""
    infos = {m.module: _collect_info(m) for m in modules}
    resolver = _Resolver(infos)
    graph = CallGraph()
    for info in infos.values():
        for definition in info.defs.values():
            graph.definitions[definition.key] = definition
    for info in infos.values():
        for definition in info.defs.values():
            if isinstance(definition.node, ast.ClassDef):
                continue  # methods carry their own keys
            _collect_edges(graph, resolver, info, definition)
    return graph


def _collect_edges(
    graph: CallGraph,
    resolver: _Resolver,
    info: _ModuleInfo,
    definition: Definition,
) -> None:
    module_name = info.module.module
    enclosing_class = (
        definition.qualname.split(".")[0] if "." in definition.qualname else None
    )
    for node in ast.walk(definition.node):
        if not isinstance(node, ast.Call):
            continue
        callee = _resolve_call(resolver, info, node, enclosing_class)
        if callee is None:
            continue
        graph.add_edge(
            CallSite(
                caller=definition.key,
                callee=callee,
                node=node,
                module=module_name,
            )
        )


def _resolve_call(
    resolver: _Resolver,
    info: _ModuleInfo,
    node: ast.Call,
    enclosing_class: str | None,
) -> str | None:
    module_name = info.module.module
    func = node.func
    if isinstance(func, ast.Name):
        return resolver.resolve_symbol(module_name, func.id)
    if isinstance(func, ast.Attribute):
        # self.method(...) within a class body.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and enclosing_class is not None
        ):
            return resolver.resolve_symbol(
                module_name, f"{enclosing_class}.{func.attr}"
            )
        dotted = _dotted_name(func.value)
        if dotted is None:
            return None
        root = dotted.split(".")[0]
        imported = info.imports.get(root)
        if imported is None:
            return None
        origin, original = imported
        if original is None:
            # ``import pkg.mod as alias`` / ``import pkg.mod``: the call
            # target lives in the dotted module path.
            target_module = origin
            rest = dotted.split(".")[1:]
            if rest:
                target_module = (
                    ".".join([origin] + rest)
                    if not origin.endswith("." + ".".join(rest))
                    else origin
                )
            return resolver.resolve_symbol(target_module, func.attr)
        # ``from pkg import mod`` then ``mod.attr(...)``.
        if len(dotted.split(".")) == 1:
            inner = resolver.resolve_symbol(origin, original)
            if inner is not None and inner.startswith("external:"):
                return f"external:{origin}.{original}:{func.attr}"
            # The imported symbol may itself be a module.
            candidate = f"{origin}.{original}"
            if candidate in resolver.infos:
                return resolver.resolve_symbol(candidate, func.attr)
        return None
    return None


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
