"""Flow rule: multi-LPN lock acquisition must iterate sorted LPNs.

The transaction executor (PR 8) takes per-LPN op locks with ``yield
_Acquire(lpn)``.  Deadlock freedom rests on one global convention:
whenever a program acquires *several* locks in a loop, the loop walks
the LPNs in ascending order, so no two programs ever hold locks in
opposite orders.  ``_rollback_steps`` is the canonical compliant shape::

    lpns = sorted({record.lpn for record in txn.undo} - ctx.held)
    for lpn in lpns:
        yield _Acquire(lpn)

The rule finds every ``for`` loop that yields an acquire sentinel and
demands its iterable be provably sorted: either a literal
``sorted(...)`` call, or a name whose **every** reaching definition at
the loop header is a ``sorted(...)`` call.  Reaching definitions (not
a same-line regex) is what lets the proof survive the assignment being
hoisted away from the loop — and what makes a re-assignment on *any*
path to the loop break the proof, which is exactly when a human
reviewer would want to look.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ...engine import Finding, LintModule
from ..base import FlowRule
from ..cfg import CFG, _definitions_of, _walk_scope, reaching_definitions
from .common import scope_functions

__all__ = ["LockOrderingRule"]

#: Callee names that construct a lock-acquisition sentinel.
_ACQUIRE_NAMES = ("_Acquire", "Acquire")
#: Callee names that construct the matching release sentinel.
_RELEASE_NAMES = ("_Release", "Release")


def _is_sorted_call(node: ast.expr | None) -> bool:
    """Whether an expression is a direct ``sorted(...)`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _sentinel_yields(
    body: Iterable[ast.stmt], names: tuple[str, ...]
) -> Iterator[ast.expr]:
    """Sentinel-constructing yields within a suite (own scope, any depth)."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in _walk_scope(stmt):
            if not isinstance(node, ast.Yield) or node.value is None:
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in names:
                yield node


def _sentinel_key(node: ast.expr) -> str:
    """Canonical text of a sentinel yield's argument (pairing key)."""
    call = node.value  # type: ignore[attr-defined]
    return ast.unparse(call.args[0]) if call.args else ""


class LockOrderingRule(FlowRule):
    """Acquire loops must iterate a provably ``sorted(...)`` source."""

    id = "lock-ordering"
    description = (
        "loops that yield lock-acquire sentinels must iterate a "
        "sorted(...) sequence, proven by reaching definitions"
    )

    #: Only the host-side scheduler stack takes multi-LPN locks.
    packages = ("repro.hostq",)

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Inspect every acquire loop in every function of the module."""
        if not module.in_package(*self.packages):
            return
        context = self.context_for(module)
        for func in scope_functions(module.tree):
            cfg = context.cfg(func)
            in_sets: dict | None = None
            for loop in self._acquire_loops(func):
                if _is_sorted_call(loop.iter):
                    continue
                if isinstance(loop.iter, ast.Name):
                    if in_sets is None:
                        in_sets = reaching_definitions(cfg)
                    if self._provably_sorted(cfg, in_sets, loop):
                        continue
                    yield self.finding(
                        module,
                        loop.iter,
                        f"lock-acquire loop iterates `{loop.iter.id}`, "
                        "which has a reaching definition that is not "
                        "`sorted(...)`; unsorted multi-LPN acquisition "
                        "can deadlock",
                    )
                    continue
                yield self.finding(
                    module,
                    loop.iter,
                    "lock-acquire loop must iterate `sorted(...)` or a "
                    "name every definition of which is `sorted(...)`; "
                    "unsorted multi-LPN acquisition can deadlock",
                )

    @staticmethod
    def _acquire_loops(func: ast.AST) -> Iterator[ast.For]:
        """``for`` loops whose iterations *accumulate* locks.

        A loop only creates ordering risk when it acquires a lock some
        iteration and still holds it in the next one.  A loop that
        releases what it acquired within the same iteration (``yield
        _Acquire(lpn)`` ... ``yield _Release(lpn)``, the transaction
        op loop) holds at most one lock at a time and is exempt;
        pairing is by the sentinel's argument expression.
        """
        owner: dict[int, ast.For] = {}

        def visit(node: ast.AST, current: ast.For | None) -> None:
            if isinstance(node, ast.For):
                current = node
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    return
            elif isinstance(node, (ast.ClassDef, ast.Lambda)):
                return
            if isinstance(node, ast.Yield) and current is not None:
                owner[id(node)] = current
            for child in ast.iter_child_nodes(node):
                visit(child, current)

        visit(func, None)
        body = getattr(func, "body", [])
        releases: dict[ast.For, set[str]] = {}
        for point in _sentinel_yields(body, _RELEASE_NAMES):
            loop = owner.get(id(point))
            if loop is not None:
                releases.setdefault(loop, set()).add(_sentinel_key(point))
        flagged: list[ast.For] = []
        for point in _sentinel_yields(body, _ACQUIRE_NAMES):
            loop = owner.get(id(point))
            if loop is None or loop in flagged:
                continue
            if _sentinel_key(point) in releases.get(loop, set()):
                continue  # acquire/release paired within the iteration
            flagged.append(loop)
        yield from flagged

    @staticmethod
    def _provably_sorted(cfg: CFG, in_sets: dict, loop: ast.For) -> bool:
        """Every definition of the loop iterable reaching the loop is
        a ``sorted(...)`` call."""
        name = loop.iter.id  # type: ignore[union-attr]
        block = cfg.block_of(loop)
        if block is None:
            return False
        live = {
            defname: set(sites)
            for defname, sites in in_sets.get(block.index, {}).items()
        }
        # Fold in definitions earlier in the same block.
        position = cfg.position[id(loop)][1]
        for stmt in block.stmts[:position]:
            for site in _definitions_of(stmt):
                live[site.name] = {site}
        sites = live.get(name)
        if not sites:
            return False
        return all(_is_sorted_call(site.value) for site in sites)
