"""Small AST helpers shared by the flow rules.

"Shared-state store" is the notion several rules agree on: an
assignment, augmented assignment, or deletion whose target is an
attribute or subscript rooted at ``self`` or a function parameter —
i.e. a mutation visible outside the function's own locals.  Stores to
bare local names never qualify; stores rooted at a name that is neither
local nor a parameter are *global* stores, which
:mod:`~repro.lintkit.flow.rules.yield_discipline` bans outright inside
storage programs.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..cfg import _walk_scope

__all__ = [
    "call_attr_name",
    "function_locals",
    "root_name",
    "scope_functions",
    "store_targets",
]


def root_name(node: ast.expr) -> str | None:
    """Leftmost ``Name`` of an attribute/subscript chain (else None)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def store_targets(stmt: ast.stmt) -> list[ast.expr]:
    """Targets a statement assigns to or deletes (flattened)."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets.extend(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets.append(stmt.target)
    elif isinstance(stmt, ast.Delete):
        targets.extend(stmt.targets)
    flat: list[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(target.elts)
        else:
            flat.append(target)
    return flat


def function_locals(func: ast.AST) -> set[str]:
    """Names bound locally in a function scope (params included)."""
    names: set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in args.args + args.kwonlyargs + args.posonlyargs:
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for node in _walk_scope(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            names.difference_update(node.names)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def call_attr_name(node: ast.Call) -> str | None:
    """The attribute name of an ``obj.attr(...)`` call (else None)."""
    return node.func.attr if isinstance(node.func, ast.Attribute) else None


def scope_functions(tree: ast.AST) -> Iterable[ast.AST]:
    """Every function definition in a module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
