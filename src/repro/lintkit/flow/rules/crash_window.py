"""Flow rule: no shared-state mutation inside a crash window.

The write-path protocol (PR 4) is *data first, commit mark second*: a
delta/page program lands the payload, and only the subsequent OOB mark
program makes it durable-visible to recovery.  Between those two device
calls the system is in its **crash window** — a power cut leaves the
data page written but unmarked, and recovery must be able to pretend
the write never happened.  Any in-memory mapping-table or stats
mutation performed inside the window breaks that pretence: the process
state says "written" while durable state says "not yet".

The rule flags every shared-state store S for which both hold on some
path of the function's CFG:

* a data-program call reaches S without an intervening mark call, and
* S reaches a mark call without an intervening data call.

The two stopper sets are what make loops behave: in a GC migration
loop, a stats bump after this iteration's mark call is *outside* the
window even though the back edge makes it "reachable" from the data
call of the next iteration.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ...engine import Finding, LintModule
from ..base import FlowRule
from ..cfg import CFG, own_nodes, stmts_after, stmts_before
from .common import call_attr_name, root_name, scope_functions, store_targets

__all__ = ["CrashWindowRule"]

#: Method names that program payload data onto the device.
DATA_CALLS = frozenset(
    {"write", "write_delta", "program", "program_torn", "append"}
)
#: Method names that program the commit mark (OOB metadata).
MARK_CALLS = frozenset({"write_oob", "program_oob", "program_oob_torn"})
#: Receiver names the device sits behind in this tree.
DEVICE_RECEIVERS = frozenset({"device", "mem", "memory", "flash", "dev"})


def _device_calls(stmt: ast.stmt, names: frozenset[str]) -> bool:
    """Whether a statement itself performs one of the named device calls."""
    for node in own_nodes(stmt):
        if not isinstance(node, ast.Call):
            continue
        attr = call_attr_name(node)
        if attr not in names:
            continue
        receiver = node.func.value  # type: ignore[union-attr]
        base = (
            receiver.id
            if isinstance(receiver, ast.Name)
            else receiver.attr if isinstance(receiver, ast.Attribute) else None
        )
        if base in DEVICE_RECEIVERS:
            return True
    return False


class CrashWindowRule(FlowRule):
    """Data program → commit mark intervals must not mutate state."""

    id = "crash-window"
    description = (
        "no mapping/stats mutation between a data program and its "
        "commit-mark OOB program on any path"
    )

    #: The layers that own write paths with commit-mark protocols.
    packages = ("repro.core", "repro.ftl", "repro.storage")

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Scan every function that performs both halves of the protocol."""
        if not module.in_package(*self.packages):
            return
        context = self.context_for(module)
        for func in scope_functions(module.tree):
            cfg = context.cfg(func)
            yield from self._check_function(module, func, cfg)

    def _check_function(
        self, module: LintModule, func: ast.AST, cfg: CFG
    ) -> Iterator[Finding]:
        data_stmts = []
        mark_stmts = []
        for block in cfg.blocks:
            for stmt in block.stmts:
                if _device_calls(stmt, DATA_CALLS):
                    data_stmts.append(stmt)
                if _device_calls(stmt, MARK_CALLS):
                    mark_stmts.append(stmt)
        if not data_stmts or not mark_stmts:
            return
        after_data = stmts_after(cfg, data_stmts, stoppers=mark_stmts)
        before_mark = stmts_before(cfg, mark_stmts, stoppers=data_stmts)
        window = after_data & before_mark
        shared_roots = {"self", "cls"}
        args = getattr(func, "args", None)
        if args is not None:
            for arg in args.args + args.kwonlyargs + args.posonlyargs:
                shared_roots.add(arg.arg)
        for block in cfg.blocks:
            for stmt in block.stmts:
                if id(stmt) not in window:
                    continue
                for target in store_targets(stmt):
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = root_name(target)
                    if root not in shared_roots:
                        continue
                    yield self.finding(
                        module,
                        target,
                        f"state rooted at `{root}` is mutated inside the "
                        "crash window (after the data program, before the "
                        "commit mark); a crash here desynchronises memory "
                        "from durable state",
                    )
