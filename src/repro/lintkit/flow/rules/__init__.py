"""Registry of the flow-sensitive lint rules.

Five rules, each enforcing one invariant from DESIGN.md §13 over the
CFG/call-graph layer in :mod:`repro.lintkit.flow`:

========================  ============================================
rule id                   invariant
========================  ============================================
``yield-discipline``      storage programs stay resume-safe
``lock-ordering``         multi-LPN acquire loops iterate sorted LPNs
``crash-window``          no state mutation between data and mark
``telemetry-guard``       emits dominated by an ``.active`` check
``transitive-layering``   no call chain into concrete backends
========================  ============================================

``telemetry-guard`` deliberately reuses the syntactic rule's id: it is
the same contract, enforced precisely, and existing suppressions keep
working.  ``default_rules(flow=True)`` swaps the syntactic
implementation out for this one.
"""

from __future__ import annotations

from .crash_window import CrashWindowRule
from .layering import TransitiveLayeringRule
from .lock_order import LockOrderingRule
from .telemetry_guard import FlowTelemetryGuardRule
from .yield_discipline import YieldDisciplineRule

__all__ = [
    "CrashWindowRule",
    "FLOW_RULE_CLASSES",
    "FlowTelemetryGuardRule",
    "LockOrderingRule",
    "TransitiveLayeringRule",
    "YieldDisciplineRule",
]

#: Every flow rule, in reporting order.
FLOW_RULE_CLASSES = (
    YieldDisciplineRule,
    LockOrderingRule,
    CrashWindowRule,
    FlowTelemetryGuardRule,
    TransitiveLayeringRule,
)
