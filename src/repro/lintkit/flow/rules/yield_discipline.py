"""Flow rule: storage programs must stay resume-safe.

A storage program (PR 6) is a generator that yields
:class:`~repro.storage.program.DeviceCommand` objects (or the hostq
lock sentinels) and may be suspended, interleaved with other clients,
and resumed by the scheduler at every yield.  Three things break that
contract:

* **a yield inside an ``except`` or ``finally`` suite** — the program
  would suspend while unwinding, and a driver that drops it mid-unwind
  leaves cleanup half-run;
* **a store to module-global state** — two interleaved instances of
  the program would race on it;
* **a mutation of ``self``/parameter-reachable state after a *bare*
  yield** — ``yield cmd`` discards the completion the driver sends
  back, so the program cannot know whether the command succeeded when
  it mutates shared state on resume.  The sanctioned pattern binds the
  completion first (``latency = yield cmd``), which is how
  ``fetch_program``/``_evict_program`` install frames and bump stats.
  ``yield from sub_program(...)`` is *not* a suspension hazard for the
  code after it: delegation returns only once the sub-program ran to
  completion.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ...engine import Finding, LintModule
from ..base import FlowRule
from ..cfg import CFG, _walk_scope, stmts_after
from .common import function_locals, root_name, scope_functions, store_targets

__all__ = ["YieldDisciplineRule"]

#: Call names whose yielded result marks a generator as a storage
#: program even when the function name lacks the ``_program`` suffix.
_COMMAND_CALLS = ("DeviceCommand", "log_force_command", "_Acquire", "_Release")


def _call_name(node: ast.expr) -> str | None:
    """The simple name of a call's callee (else None)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_storage_program(func: ast.AST, cfg: CFG) -> bool:
    """Whether a generator follows the storage-program protocol."""
    if not cfg.yields:
        return False
    name = getattr(func, "name", "")
    if name.endswith("_program"):
        return True
    for point in cfg.yields:
        value = getattr(point.node, "value", None)
        called = _call_name(value) if value is not None else None
        if called is None:
            continue
        if called in _COMMAND_CALLS or called.endswith("_command"):
            return True
        if isinstance(point.node, ast.YieldFrom) and called.endswith("_program"):
            return True
    return False


def _yields_in_suite(body: Iterable[ast.stmt]) -> Iterator[ast.expr]:
    """Yield expressions inside a suite, own scope only."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in _walk_scope(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                yield node


class YieldDisciplineRule(FlowRule):
    """No unwinding yields, global stores, or post-bare-yield mutation."""

    id = "yield-discipline"
    description = (
        "storage programs must not yield while unwinding, touch module "
        "globals, or mutate shared state after a result-discarding yield"
    )

    #: Packages whose generators are held to the program protocol.
    packages = ("repro.storage", "repro.hostq")

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Apply all three sub-checks to every storage program."""
        if not module.in_package(*self.packages):
            return
        context = self.context_for(module)
        for func in scope_functions(module.tree):
            cfg = context.cfg(func)
            if not _is_storage_program(func, cfg):
                continue
            yield from self._check_unwinding_yields(module, func)
            yield from self._check_global_stores(module, func, cfg)
            yield from self._check_post_yield_stores(module, func, cfg)

    def _check_unwinding_yields(
        self, module: LintModule, func: ast.AST
    ) -> Iterator[Finding]:
        """Flag yields placed inside except/finally suites."""
        for node in _walk_scope(func):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                for point in _yields_in_suite(handler.body):
                    yield self.finding(
                        module,
                        point,
                        "storage program yields inside an `except` suite; "
                        "a suspended unwind cannot be resumed safely",
                    )
            for point in _yields_in_suite(node.finalbody):
                yield self.finding(
                    module,
                    point,
                    "storage program yields inside a `finally` suite; "
                    "cleanup must run to completion without suspending",
                )

    def _check_global_stores(
        self, module: LintModule, func: ast.AST, cfg: CFG
    ) -> Iterator[Finding]:
        """Flag stores to names/objects outside the function's locals."""
        local_names = function_locals(func)
        for block in cfg.blocks:
            for stmt in block.stmts:
                for target in store_targets(stmt):
                    root = root_name(target)
                    if root is None or root in local_names:
                        continue
                    yield self.finding(
                        module,
                        target,
                        f"storage program mutates module-level state "
                        f"`{root}`; interleaved program instances would "
                        "race on it",
                    )

    def _check_post_yield_stores(
        self, module: LintModule, func: ast.AST, cfg: CFG
    ) -> Iterator[Finding]:
        """Flag shared-state stores reachable from a bare yield."""
        args = getattr(func, "args", None)
        shared_roots = {"self", "cls"}
        if args is not None:
            for arg in args.args + args.kwonlyargs + args.posonlyargs:
                shared_roots.add(arg.arg)
        bare = [
            point.stmt
            for point in cfg.yields
            if isinstance(point.node, ast.Yield) and not point.bound
        ]
        if not bare:
            return
        all_yield_stmts = {point.stmt for point in cfg.yields}
        reachable = stmts_after(cfg, bare, stoppers=all_yield_stmts)
        for block in cfg.blocks:
            for stmt in block.stmts:
                if id(stmt) not in reachable:
                    continue
                for target in store_targets(stmt):
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = root_name(target)
                    if root not in shared_roots:
                        continue
                    yield self.finding(
                        module,
                        target,
                        f"shared state rooted at `{root}` is mutated after "
                        "a result-discarding yield; bind the completion "
                        "(`result = yield cmd`) before mutating",
                    )
