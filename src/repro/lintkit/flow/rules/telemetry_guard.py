"""Flow rule: telemetry emits must be *dominated* by an ``.active`` check.

The telemetry bus contract (DESIGN.md §9) is that a disabled bus costs
nothing: every ``.emit(...)`` call sits behind an ``if ...active:``
guard so the event tuple is never even built on the cold path.  The
original syntactic rule approximated "behind a guard" with line spans,
which produced false negatives (an emit after the guarded block, but
on the same line range) and could not see bail-outs.

The flow version states the contract exactly: the basic block holding
the emit statement must be **dominated** by a branch edge that implies
the bus is active.  Because the CFG gives every branch outcome its own
synthetic entry block, all the idioms reduce to plain dominance::

    if self.events.active:          # emit dominated by the true edge
        self.events.emit(...)

    if not self.events.active:      # bail-out: code after the return
        return                      # is dominated by the false edge
    self.events.emit(...)

    while bus.active and budget:    # loop guards work the same way
        bus.emit(...)

Compound tests are evaluated structurally: the true edge of ``a.active
and cheap()`` implies active; the false edge of ``not a.active or
done`` does not (``done`` alone can take it).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ...engine import Finding, LintModule
from ..base import FlowRule
from ..cfg import CFG, own_nodes
from .common import scope_functions

__all__ = ["FlowTelemetryGuardRule", "implies_active"]


def _mentions_active(test: ast.expr) -> bool:
    """Whether an atomic test reads an ``active`` flag."""
    return (isinstance(test, ast.Attribute) and test.attr == "active") or (
        isinstance(test, ast.Name) and test.id == "active"
    )


def implies_active(test: ast.expr, outcome: bool) -> bool:
    """Whether taking the ``outcome`` edge of ``test`` proves activity.

    Structural evaluation over ``not``/``and``/``or``: the true edge of
    a conjunction proves every conjunct; the false edge of a
    disjunction refutes every disjunct.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return implies_active(test.operand, not outcome)
    if isinstance(test, ast.BoolOp):
        if isinstance(test.op, ast.And):
            if outcome:
                return any(implies_active(v, True) for v in test.values)
            # The false edge only proves that *some* conjunct failed.
            return False
        if outcome:
            # The true edge only proves that *some* disjunct held.
            return all(implies_active(v, True) for v in test.values)
        return any(implies_active(v, False) for v in test.values)
    return outcome and _mentions_active(test)


def _emit_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """``something.emit(...)`` calls a statement itself evaluates."""
    for node in own_nodes(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            yield node


class FlowTelemetryGuardRule(FlowRule):
    """Every emit block must be dominated by an active-implying edge."""

    id = "telemetry-guard"
    description = (
        "telemetry emit sites must be dominated by a branch that "
        "proves the event bus is active"
    )

    #: The bus implementation itself emits unconditionally by design.
    exempt_modules = ("repro.telemetry.events",)

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Check module top-level, class bodies, and every function."""
        if module.module in self.exempt_modules:
            return
        context = self.context_for(module)
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        )
        scopes.extend(scope_functions(module.tree))
        for scope in scopes:
            yield from self._check_scope(module, context.cfg(scope))
        yield from self._check_lambdas(module)

    def _check_scope(self, module: LintModule, cfg: CFG) -> Iterator[Finding]:
        guard_blocks = []
        for branch in cfg.branches:
            if implies_active(branch.test, True):
                guard_blocks.append(branch.true_entry)
            if implies_active(branch.test, False):
                guard_blocks.append(branch.false_entry)
        for block in cfg.blocks:
            for stmt in block.stmts:
                for call in _emit_calls(stmt):
                    if any(cfg.dominates(g, block) for g in guard_blocks):
                        continue
                    yield self.finding(
                        module,
                        call,
                        "telemetry emit is not dominated by an `.active` "
                        "check; the disabled-bus path would still build "
                        "and send the event",
                    )

    def _check_lambdas(self, module: LintModule) -> Iterator[Finding]:
        """Emits inside lambdas can never be dominance-guarded."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Lambda):
                continue
            for call in ast.walk(node.body):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "emit"
                ):
                    yield self.finding(
                        module,
                        call,
                        "telemetry emit inside a lambda cannot be guarded "
                        "by an `.active` check; hoist it into a guarded "
                        "statement",
                    )
