"""Flow rule: no *transitive* path from storage/hostq to a backend.

The syntactic device-layering rule bans direct imports of the concrete
FTL backends (``NoFTL``, ``BlockSSD``, ``ShardedDevice``) outside
``repro.ftl``/``repro.testbed``.  It cannot see a two-hop breach: a
helper in an allowed package that constructs a backend, called from
``repro.storage`` — the storage module imports only the innocent
helper, yet at runtime it reaches the concrete class all the same.

This rule closes the gap with the project call graph: for every
function or method defined in a watched package it computes the set of
definitions reachable through resolved call edges and flags any chain
that lands in a concrete backend module (or an unresolved external
symbol living there).  ``repro.testbed`` is the sanctioned composition
root — edges into it are not expanded, so ``hostq`` calling
``make_device`` (which legitimately builds backends) stays clean,
exactly as DESIGN.md's layering section prescribes.

The finding is anchored at the first call of the offending chain (the
only line the watched module controls) and the message spells out the
whole chain, so the fix — route through the testbed factory or a
protocol — is obvious from the diagnostic alone.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ...engine import Finding, LintModule
from ...rules.layering import CONCRETE_MODULES
from ..base import FlowRule
from ..callgraph import CallSite

__all__ = ["TransitiveLayeringRule"]


def _concrete_module(module_name: str) -> bool:
    """Whether a dotted module is (or sits under) a concrete backend."""
    return any(
        module_name == concrete or module_name.startswith(concrete + ".")
        for concrete in CONCRETE_MODULES
    )


def _short(key: str) -> str:
    """Display name of one definition key."""
    if key.startswith("external:"):
        _, module_name, symbol = key.split(":", 2)
        return symbol or module_name
    return key.split(":", 1)[1]


def _chain_text(chain: list[CallSite]) -> str:
    """Human-readable rendering of one call chain."""
    names = [_short(chain[0].caller)]
    names.extend(_short(site.callee) for site in chain)
    return " -> ".join(names)


class TransitiveLayeringRule(FlowRule):
    """Call-graph closure of the device-layering boundary."""

    id = "transitive-layering"
    description = (
        "storage/ and hostq/ must not reach concrete FTL backends "
        "through any call chain (testbed is the sanctioned boundary)"
    )

    #: Packages whose call closures are checked.
    packages = ("repro.storage", "repro.hostq")
    #: Composition roots traversal does not look through.
    sanctioned = ("repro.testbed",)

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Flag reachable concrete-backend definitions per function."""
        if not module.in_package(*self.packages):
            return
        context = self.context_for(module)
        graph = context.call_graph
        reported: set[tuple[int, str]] = set()
        for definition in graph.definitions.values():
            if definition.module != module.module:
                continue
            if isinstance(definition.node, ast.ClassDef):
                continue
            chains = graph.reach(definition.key, skip_modules=self.sanctioned)
            for reached, chain in sorted(chains.items(), key=lambda kv: kv[0]):
                if reached.startswith("external:"):
                    _, target_module, _symbol = reached.split(":", 2)
                else:
                    target_module = reached.partition(":")[0]
                if not _concrete_module(target_module):
                    continue
                first = chain[0]
                key = (id(first.node), reached)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    module,
                    first.node,
                    f"call chain reaches concrete backend "
                    f"`{target_module}` ({_chain_text(chain)}); route "
                    "through the testbed factory or a device protocol",
                )
