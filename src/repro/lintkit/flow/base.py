"""Flow-rule plumbing: the shared per-run analysis context.

Flow rules need more than one module's AST: the transitive-layering
rule walks a project-wide call graph, and every rule builds CFGs.  Both
are pure functions of the parsed sources, so one lint run computes each
exactly once:

* :class:`FlowContext` owns the loaded modules and *lazily* caches the
  call graph (built on first access, shared by every rule thereafter)
  and one CFG per scope node (shared between rules that inspect the
  same function);
* :class:`FlowRule` is the base class flow rules subclass instead of
  :class:`~repro.lintkit.engine.Rule`; the engine binds the run's
  context before checking.  An unbound rule (unit tests, ad-hoc use)
  transparently builds a single-module context on demand.
"""

from __future__ import annotations

import ast

from ..engine import LintModule, Rule
from .callgraph import CallGraph, build_call_graph
from .cfg import CFG, build_cfg

__all__ = ["FlowContext", "FlowRule"]


class FlowContext:
    """Analysis state shared by all flow rules within one lint run."""

    def __init__(self, modules: list[LintModule]) -> None:
        self.modules = list(modules)
        self._cfgs: dict[int, CFG] = {}
        self._call_graph: CallGraph | None = None
        #: How many times the call graph was actually constructed —
        #: asserted to stay at 1 per run (build caching regression).
        self.call_graph_builds = 0

    @property
    def call_graph(self) -> CallGraph:
        """The project call graph, built once and memoized."""
        if self._call_graph is None:
            self._call_graph = build_call_graph(self.modules)
            self.call_graph_builds += 1
        return self._call_graph

    def cfg(self, scope: ast.AST) -> CFG:
        """The (memoized) CFG of one function/module scope."""
        cfg = self._cfgs.get(id(scope))
        if cfg is None:
            cfg = build_cfg(scope)
            self._cfgs[id(scope)] = cfg
        return cfg


class FlowRule(Rule):
    """A rule that runs over CFGs and the shared project context."""

    def __init__(self) -> None:
        self.context: FlowContext | None = None

    def bind(self, context: FlowContext) -> None:
        """Attach the run-wide analysis context (engine calls this)."""
        self.context = context

    def context_for(self, module: LintModule) -> FlowContext:
        """The bound context, or a throwaway single-module one."""
        if self.context is None:
            self.context = FlowContext([module])
        elif all(m is not module for m in self.context.modules):
            # An ad-hoc module outside the bound run (snippet tests).
            return FlowContext([module])
        return self.context
