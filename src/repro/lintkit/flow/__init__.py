"""Flow-sensitive analysis layer for iplint (DESIGN.md §13).

The syntactic rules in :mod:`repro.lintkit.rules` judge one AST node
at a time; this package adds the machinery to judge *paths*:

* :mod:`~repro.lintkit.flow.cfg` — per-function control-flow graphs
  with dominators, reaching definitions, and bounded path scans;
* :mod:`~repro.lintkit.flow.callgraph` — a conservative module-level
  call graph with re-export resolution;
* :mod:`~repro.lintkit.flow.base` — the shared per-run
  :class:`FlowContext` (cached CFGs, one call-graph build per run) and
  the :class:`FlowRule` base class;
* :mod:`~repro.lintkit.flow.rules` — the five flow rules.

Flow rules are on by default (``repro lint``); ``--no-flow`` drops
back to the purely syntactic rule set.
"""

from __future__ import annotations

from .base import FlowContext, FlowRule
from .callgraph import CallGraph, CallSite, Definition, build_call_graph
from .cfg import (
    CFG,
    BasicBlock,
    Branch,
    DefSite,
    YieldPoint,
    build_cfg,
    dominators,
    reaching_definitions,
    stmts_after,
    stmts_before,
    yields_in_scope,
)
from .rules import FLOW_RULE_CLASSES

__all__ = [
    "BasicBlock",
    "Branch",
    "CFG",
    "CallGraph",
    "CallSite",
    "DefSite",
    "Definition",
    "FLOW_RULE_CLASSES",
    "FlowContext",
    "FlowRule",
    "YieldPoint",
    "build_call_graph",
    "build_cfg",
    "dominators",
    "reaching_definitions",
    "stmts_after",
    "stmts_before",
    "yields_in_scope",
]
