"""Finding reporters: human-readable text and a stable JSON schema.

The JSON document is the machine interface (CI annotations, tooling)::

    {
      "version": 1,
      "findings": [
        {"path": "...", "line": 3, "col": 9, "rule": "ispp-safety",
         "severity": "error", "message": "..."},
        ...
      ],
      "summary": {"total": 2, "by_rule": {"ispp-safety": 2},
                  "files": 1}
    }

The human reporter prints one ``path:line:col: severity[rule] message``
line per finding (editor/CI clickable) plus a one-line summary.

The GitHub reporter emits one workflow command per finding
(``::error file=...,line=...,col=...,title=...::message``) so findings
surface as inline PR annotations; non-command lines in its output are
plain log text GitHub ignores.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .engine import Finding

__all__ = ["json_report", "render_github", "render_json", "render_text"]

#: Bumped whenever a field is added/renamed in the JSON shape.
JSON_SCHEMA_VERSION = 1


def json_report(findings: Sequence[Finding]) -> dict:
    """The JSON document as a plain dict (see module docstring)."""
    by_rule = Counter(finding.rule for finding in findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "files": len({finding.path for finding in findings}),
        },
    }


def render_json(findings: Sequence[Finding]) -> str:
    """Serialized JSON report (two-space indent, trailing newline)."""
    return json.dumps(json_report(findings), indent=2) + "\n"


def _escape_github(text: str, *, property_value: bool = False) -> str:
    """Escape data for a GitHub Actions workflow command."""
    escaped = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        escaped = escaped.replace(":", "%3A").replace(",", "%2C")
    return escaped


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions annotations, one workflow command per finding."""
    if not findings:
        return "iplint: no findings\n"
    lines = []
    for finding in findings:
        level = "error" if finding.severity == "error" else "warning"
        properties = ",".join(
            (
                f"file={_escape_github(finding.path, property_value=True)}",
                f"line={finding.line}",
                f"col={finding.col}",
                f"title={_escape_github('iplint ' + finding.rule, property_value=True)}",
            )
        )
        lines.append(
            f"::{level} {properties}::{_escape_github(finding.message)}"
        )
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"iplint: {len(findings)} {noun}")
    return "\n".join(lines) + "\n"


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report; empty input renders the all-clear line."""
    if not findings:
        return "iplint: no findings\n"
    lines = [str(finding) for finding in findings]
    by_rule = Counter(finding.rule for finding in findings)
    breakdown = ", ".join(
        f"{rule}: {count}" for rule, count in sorted(by_rule.items())
    )
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"iplint: {len(findings)} {noun} ({breakdown})")
    return "\n".join(lines) + "\n"
