"""The iplint rule engine: findings, rules, suppressions, the runner.

``iplint`` is the repo's domain linter: a small AST-visitor framework
whose rules machine-check the invariants the codebase is built on —
the ISPP charge-increase rule, the device-layer protocol boundary,
run determinism, and telemetry discipline (see DESIGN.md §9).

The engine is deliberately tiny:

* :class:`Finding` — one diagnostic (rule id, location, message);
* :class:`Rule` — a per-rule class contributing an AST check over one
  :class:`LintModule`;
* :class:`LintModule` — a parsed source file plus the dotted module
  name rules use to decide applicability (layer boundaries);
* :func:`run_lint` — walk paths, parse, apply rules, drop suppressed
  findings, return the sorted remainder.

Suppressions are inline comments, narrowest scope wins::

    page.data[0] = 0  # iplint: disable=ispp-safety
    # iplint: disable-file=determinism   (anywhere in the file)

A suppression names one or more comma-separated rule ids, or ``all``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintModule",
    "PATH_EXEMPTIONS",
    "Rule",
    "Suppressions",
    "iter_python_files",
    "load_module",
    "module_name_for",
    "run_lint",
]

_SUPPRESS_RE = re.compile(r"#\s*iplint:\s*(disable|disable-file)=([A-Za-z0-9_,\s-]+)")

#: Rule id -> module prefixes where that rule is waived by design.
#:
#: Unlike inline suppressions (which mark one surprising line), a path
#: exemption records an *architectural* decision: the named component's
#: purpose conflicts with the rule.  The crash harness is the example —
#: its job is to catch anything a crash-recovery cycle throws and
#: report it as a divergence rather than die, so its blanket handlers
#: are the product, not an accident.
PATH_EXEMPTIONS: dict[str, tuple[str, ...]] = {
    "exception-discipline": ("repro.crashkit.harness",),
    # The benchmark harness *measures* wall time; its readings never
    # feed back into a simulation (runs replay identically regardless).
    "determinism": ("repro.perfkit",),
}


def _path_exempted(module: "LintModule", rule_id: str) -> bool:
    """Whether a module is exempted from a rule by PATH_EXEMPTIONS."""
    return any(
        module.module == prefix or module.module.startswith(prefix + ".")
        for prefix in PATH_EXEMPTIONS.get(rule_id, ())
    )


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def to_dict(self) -> dict:
        """JSON-reporter shape (stable schema, see report module)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


@dataclass
class Suppressions:
    """Inline ``# iplint: disable=...`` directives of one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        """Collect the directives from raw source text."""
        sup = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            kind, spec = match.groups()
            rules = {part.strip() for part in spec.split(",") if part.strip()}
            if kind == "disable-file":
                sup.file_wide |= rules
            else:
                sup.by_line.setdefault(lineno, set()).update(rules)
        return sup

    def hides(self, finding: Finding) -> bool:
        """Whether a finding is silenced by a directive."""
        return any(
            "all" in rules or finding.rule in rules
            for rules in (self.file_wide, self.by_line.get(finding.line, ()))
        )


@dataclass
class LintModule:
    """One parsed source file handed to every rule."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def display_path(self) -> str:
        return str(self.path)

    def in_package(self, *packages: str) -> bool:
        """Whether the module lives in (or under) any named package."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id` / :attr:`description` (and optionally
    :attr:`severity`) and implement :meth:`check`, yielding
    :class:`Finding` objects.  :meth:`finding` builds one with the
    rule's identity filled in.
    """

    id: str = "rule"
    description: str = ""
    severity: str = "error"

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Yield this rule's findings for one parsed module."""
        raise NotImplementedError

    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        """A finding of this rule at ``node``'s location."""
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


def module_name_for(path: Path, root: Path | None = None) -> str:
    """Dotted module name of a source file.

    Uses the path components after a ``src`` directory when one is on
    the path (the repo layout), else after ``root``, else the bare stem.
    """
    resolved = path.resolve()
    parts: Sequence[str] = resolved.with_suffix("").parts
    anchor: int | None = None
    if root is not None:
        root_parts = root.resolve().parts
        if parts[: len(root_parts)] == root_parts:
            anchor = len(root_parts)
    if anchor is None:
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "src":
                anchor = index + 1
                break
    if anchor is None:
        anchor = len(parts) - 1
    dotted = list(parts[anchor:])
    if dotted and dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted) if dotted else resolved.stem


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_module(
    path: Path, root: Path | None = None, module: str | None = None
) -> LintModule:
    """Parse one file into the structure rules consume.

    Raises :class:`SyntaxError` for unparseable source — a broken file
    must fail the lint run loudly, not slip through unchecked.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return LintModule(
        path=path,
        module=module if module is not None else module_name_for(path, root),
        source=source,
        tree=tree,
        suppressions=Suppressions.scan(source),
    )


def lint_module(module: LintModule, rules: Sequence[Rule]) -> list[Finding]:
    """Apply every rule to one parsed module, honouring suppressions."""
    findings = [
        finding
        for rule in rules
        for finding in rule.check(module)
        if not module.suppressions.hides(finding)
        and not _path_exempted(module, finding.rule)
    ]
    findings.sort()
    return findings


def run_lint(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    root: str | Path | None = None,
    flow: bool = True,
) -> list[Finding]:
    """Lint files/directories with the given rules (default: all).

    Returns every unsuppressed finding sorted by location.  ``flow``
    selects the default rule set (flow-sensitive pass on/off) and is
    ignored when explicit ``rules`` are given.  All modules are parsed
    up front so flow rules share one analysis context (one call-graph
    build per run).  The imports of the rule set and the flow layer
    live here (not module top) so the engine stays importable from the
    rule modules without a cycle.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules(flow=flow)
    root_path = Path(root) if root is not None else None
    modules = [
        load_module(path, root_path)
        for path in iter_python_files(Path(p) for p in paths)
    ]
    from .flow.base import FlowContext, FlowRule

    flow_rules = [rule for rule in rules if isinstance(rule, FlowRule)]
    if flow_rules:
        context = FlowContext(modules)
        for rule in flow_rules:
            rule.bind(context)
    findings: list[Finding] = []
    for module in modules:
        findings.extend(lint_module(module, rules))
    findings.sort()
    return findings
