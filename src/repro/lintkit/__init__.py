"""repro.lintkit — ``iplint``, the repo's domain-invariant linter.

A small AST-based static-analysis pass that machine-checks the
invariants this codebase rests on (DESIGN.md §9):

* **ispp-safety** — flash cell buffers are only touched inside
  ``repro.flash``; hosts use accessors and program/write_delta;
* **device-layering** — above the device layer only the
  :class:`~repro.ftl.device.FlashDevice` protocol is imported, never a
  concrete controller;
* **determinism** — no wall clocks, no process-global ``random.*``;
* **telemetry-guard** — event emission sits behind ``events.active``;
* **counter-naming** — metric names follow ``{layer}_{noun}``;
* **exception-discipline** — no bare/blind ``except``.

A flow-sensitive pass (:mod:`repro.lintkit.flow`, on by default) adds
CFG- and call-graph-backed rules — **yield-discipline**,
**lock-ordering**, **crash-window**, **transitive-layering**, and a
dominator-based **telemetry-guard** (DESIGN.md §13).

Run it as ``repro lint [--format json|github] [--no-flow] [paths...]``
(CI does), or programmatically::

    from repro.lintkit import run_lint

    findings = run_lint(["src/repro"])
    assert not findings, findings

Inline suppression: ``# iplint: disable=<rule-id>`` on the offending
line, ``# iplint: disable-file=<rule-id>`` anywhere for the file.
"""

from __future__ import annotations

from .engine import (
    Finding,
    LintModule,
    Rule,
    Suppressions,
    iter_python_files,
    lint_module,
    load_module,
    module_name_for,
    run_lint,
)
from .flow import FLOW_RULE_CLASSES, FlowContext, FlowRule
from .report import json_report, render_github, render_json, render_text
from .rules import RULE_CLASSES, default_rules, rule_by_id

__all__ = [
    "Finding",
    "LintModule",
    "Rule",
    "Suppressions",
    "FLOW_RULE_CLASSES",
    "FlowContext",
    "FlowRule",
    "RULE_CLASSES",
    "default_rules",
    "rule_by_id",
    "iter_python_files",
    "lint_module",
    "load_module",
    "module_name_for",
    "run_lint",
    "json_report",
    "render_github",
    "render_json",
    "render_text",
]
