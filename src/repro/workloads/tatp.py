"""TATP: the telecom (Home Location Register) benchmark.

Read-dominated (80% reads) with very small updates — the canonical
"update a 4-byte location" workload the paper's Table 2 uses as its
third trace source.  Implemented transactions and mix (TATP spec):

==========================  =====  ======================================
GET_SUBSCRIBER_DATA          35%   read one SUBSCRIBER row
GET_NEW_DESTINATION          10%   read SPECIAL_FACILITY + CALL_FORWARDING
GET_ACCESS_DATA              35%   read one ACCESS_INFO row
UPDATE_SUBSCRIBER_DATA        2%   1-byte flag + 1 numeric field
UPDATE_LOCATION              14%   4-byte vlr_location
INSERT_CALL_FORWARDING        2%   insert (may conflict -> abort)
DELETE_CALL_FORWARDING        2%   delete (may miss -> abort)
==========================  =====  ======================================
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass

from ..errors import RecordNotFoundError
from ..storage.engine import StorageEngine
from ..storage.schema import Char, Column, Int32, Schema
from .base import Workload


@dataclass
class TATPConfig:
    subscribers: int = 20_000
    filler_width: int = 60


class TATP(Workload):
    """The seven-transaction TATP mix."""

    name = "tatp"

    def __init__(self, config: TATPConfig | None = None) -> None:
        self.config = config if config is not None else TATPConfig()

    def setup(self, engine: StorageEngine, rng: random.Random) -> None:
        """Create the four TATP tables and load the subscriber base."""
        cfg = self.config
        self.subscriber = engine.create_table(
            "subscriber",
            Schema([
                Column("s_id", Int32()),
                Column("bit_1", Int32()),
                Column("hex_1", Int32()),
                Column("byte2_1", Int32()),
                Column("msc_location", Int32()),
                Column("vlr_location", Int32()),
                Column("sub_nbr", Char(15)),
                Column("s_filler", Char(cfg.filler_width)),
            ]),
            key=["s_id"],
        )
        self.access_info = engine.create_table(
            "access_info",
            Schema([
                Column("ai_s_id", Int32()), Column("ai_type", Int32()),
                Column("data1", Int32()), Column("data2", Int32()),
                Column("data3", Char(3)), Column("data4", Char(5)),
            ]),
            key=["ai_s_id", "ai_type"],
        )
        self.special_facility = engine.create_table(
            "special_facility",
            Schema([
                Column("sf_s_id", Int32()), Column("sf_type", Int32()),
                Column("is_active", Int32()), Column("error_cntrl", Int32()),
                Column("data_a", Int32()), Column("data_b", Char(5)),
            ]),
            key=["sf_s_id", "sf_type"],
        )
        self.call_forwarding = engine.create_table(
            "call_forwarding",
            Schema([
                Column("cf_s_id", Int32()), Column("cf_sf_type", Int32()),
                Column("start_time", Int32()), Column("end_time", Int32()),
                Column("numberx", Char(15)),
            ]),
            key=["cf_s_id", "cf_sf_type", "start_time"],
        )
        txn = engine.begin()
        for s in range(1, cfg.subscribers + 1):
            self.subscriber.insert(
                txn,
                (s, rng.randint(0, 1), rng.randint(0, 15), rng.randint(0, 255),
                 rng.randint(0, 2**31 - 1), rng.randint(0, 2**31 - 1),
                 f"{s:015d}", "f"),
            )
            self.access_info.insert(
                txn, (s, 1, rng.randint(0, 255), rng.randint(0, 255), "abc", "defgh")
            )
            self.special_facility.insert(
                txn, (s, 1, 1, 0, rng.randint(0, 255), "zzzzz")
            )
        engine.commit(txn)

    def _subscriber_id(self, rng: random.Random) -> int:
        return rng.randint(1, self.config.subscribers)

    def transaction(self, engine: StorageEngine, rng: random.Random) -> str:
        """Draw one transaction from the seven-operation TATP mix."""
        roll = rng.random()
        if roll < 0.35:
            return self._get_subscriber_data(engine, rng)
        if roll < 0.45:
            return self._get_new_destination(engine, rng)
        if roll < 0.80:
            return self._get_access_data(engine, rng)
        if roll < 0.82:
            return self._update_subscriber_data(engine, rng)
        if roll < 0.96:
            return self._update_location(engine, rng)
        if roll < 0.98:
            return self._insert_call_forwarding(engine, rng)
        return self._delete_call_forwarding(engine, rng)

    def _get_subscriber_data(self, engine, rng) -> str:
        txn = engine.begin()
        self.subscriber.read(self.subscriber.lookup(self._subscriber_id(rng)))
        engine.commit(txn)
        return "get_subscriber_data"

    def _get_new_destination(self, engine, rng) -> str:
        s = self._subscriber_id(rng)
        txn = engine.begin()
        # Valid TATP outcome: ~70% of these find no forwarding.
        with contextlib.suppress(RecordNotFoundError):
            self.special_facility.read(self.special_facility.lookup(s, 1))
            self.call_forwarding.read(self.call_forwarding.lookup(s, 1, 0))
        engine.commit(txn)
        return "get_new_destination"

    def _get_access_data(self, engine, rng) -> str:
        txn = engine.begin()
        with contextlib.suppress(RecordNotFoundError):
            self.access_info.read(self.access_info.lookup(self._subscriber_id(rng), 1))
        engine.commit(txn)
        return "get_access_data"

    def _update_subscriber_data(self, engine, rng) -> str:
        s = self._subscriber_id(rng)
        txn = engine.begin()
        self.subscriber.update(
            txn, self.subscriber.lookup(s), {"bit_1": rng.randint(0, 1)}
        )
        try:
            sf_rid = self.special_facility.lookup(s, 1)
            self.special_facility.update(txn, sf_rid, {"data_a": rng.randint(0, 255)})
        except RecordNotFoundError:
            engine.abort(txn)
            return "update_subscriber_data_abort"
        engine.commit(txn)
        return "update_subscriber_data"

    def _update_location(self, engine, rng) -> str:
        s = self._subscriber_id(rng)
        txn = engine.begin()
        self.subscriber.update(
            txn, self.subscriber.lookup(s),
            {"vlr_location": rng.randint(0, 2**31 - 1)},
        )
        engine.commit(txn)
        return "update_location"

    def _insert_call_forwarding(self, engine, rng) -> str:
        s = self._subscriber_id(rng)
        start = rng.choice((0, 8, 16))
        txn = engine.begin()
        try:
            self.call_forwarding.lookup(s, 1, start)
        except RecordNotFoundError:
            self.call_forwarding.insert(
                txn, (s, 1, start, start + 8, f"{rng.randint(0, 10**9):015d}")
            )
            engine.commit(txn)
            return "insert_call_forwarding"
        engine.abort(txn)  # primary-key conflict: spec expects ~30% aborts
        return "insert_call_forwarding_abort"

    def _delete_call_forwarding(self, engine, rng) -> str:
        s = self._subscriber_id(rng)
        start = rng.choice((0, 8, 16))
        txn = engine.begin()
        try:
            rid = self.call_forwarding.lookup(s, 1, start)
        except RecordNotFoundError:
            engine.abort(txn)
            return "delete_call_forwarding_abort"
        self.call_forwarding.delete(txn, rid)
        engine.commit(txn)
        return "delete_call_forwarding"
