"""OLTP workload generators: TPC-B, TPC-C, TATP, LinkBench.

Each workload creates its schema, loads a scaled database, and executes
its transaction mix against a storage engine; the :class:`Driver` runs
measured streams and :class:`TraceRecorder` captures buffer-level I/O
traces for the IPL-vs-IPA replay experiments.
"""

from .base import Driver, RunResult, Workload
from .linkbench import LinkBench, LinkBenchConfig
from .rand import Zipf, nurand
from .sessions import PROFILES, ClientSession, SessionProfile
from .tatp import TATP, TATPConfig
from .tpcb import TPCB, TPCBConfig
from .tpcc import TPCC, TPCCConfig
from .trace import TraceEvent, TraceRecorder, load_trace, replay, save_trace

__all__ = [
    "Driver",
    "RunResult",
    "Workload",
    "ClientSession",
    "SessionProfile",
    "PROFILES",
    "LinkBench",
    "LinkBenchConfig",
    "Zipf",
    "nurand",
    "TATP",
    "TATPConfig",
    "TPCB",
    "TPCBConfig",
    "TPCC",
    "TPCCConfig",
    "TraceEvent",
    "TraceRecorder",
    "load_trace",
    "replay",
    "save_trace",
]
