"""Workload abstractions and the benchmark driver.

A :class:`Workload` knows how to create its schema, load initial data,
and execute one transaction against a
:class:`~repro.storage.engine.StorageEngine`.  The :class:`Driver` runs
a workload for a fixed number of transactions and collects the run's
result: simulated throughput, per-transaction-type response times, and
the engine/device/IPA counter snapshots every benchmark table is built
from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..storage.engine import StorageEngine


class Workload:
    """Base class: subclass and implement ``setup`` and ``transaction``."""

    name = "workload"

    def setup(self, engine: StorageEngine, rng: random.Random) -> None:
        """Create tables and load the initial database."""
        raise NotImplementedError

    def transaction(self, engine: StorageEngine, rng: random.Random) -> str:
        """Run one transaction (begin/commit inside); returns its type."""
        raise NotImplementedError


@dataclass
class RunResult:
    """Everything a benchmark needs from one measured run."""

    workload: str
    transactions: int
    sim_seconds: float
    #: Committed transactions per simulated second.
    throughput_tps: float
    #: type -> mean response time in milliseconds (simulated).
    response_time_ms: dict = field(default_factory=dict)
    #: type -> executed count.
    mix: dict = field(default_factory=dict)
    engine_summary: dict = field(default_factory=dict)

    @property
    def device(self) -> dict:
        return self.engine_summary.get("device", {})

    @property
    def ipa(self) -> dict:
        return self.engine_summary.get("ipa", {})


class Driver:
    """Loads a workload and runs a measured transaction stream."""

    def __init__(self, engine: StorageEngine, workload: Workload, seed: int = 7) -> None:
        self.engine = engine
        self.workload = workload
        self.seed = seed
        self._loaded = False

    def load(self) -> None:
        """Populate the database and flush it to a clean steady state."""
        rng = random.Random(self.seed)
        self.workload.setup(self.engine, rng)
        self.engine.flush_all()
        self._reset_measurements()
        self._loaded = True

    def _reset_measurements(self) -> None:
        """Zero out the counters so measurement excludes the load phase."""
        engine = self.engine
        engine.device.reset_stats()
        engine.ipa.stats.__init__()
        engine.pool.stats.__init__()
        engine.foreground_read_time_us = 0.0
        engine.foreground_reads = 0

    def run(self, transactions: int, warmup: int = 0) -> RunResult:
        """Execute the transaction stream; returns the measured result."""
        if not self._loaded:
            raise WorkloadError("call load() before run()")
        if transactions <= 0:
            raise WorkloadError("transactions must be positive")
        engine = self.engine
        rng = random.Random(self.seed + 1)
        for __ in range(warmup):
            self.workload.transaction(engine, rng)
        if warmup:
            self._reset_measurements()
        start_clock = engine.clock
        committed_before = engine.txns.committed
        response_sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for __ in range(transactions):
            before = engine.clock
            txn_type = self.workload.transaction(engine, rng)
            elapsed_us = engine.clock - before
            response_sums[txn_type] = response_sums.get(txn_type, 0.0) + elapsed_us
            counts[txn_type] = counts.get(txn_type, 0) + 1
        sim_seconds = (engine.clock - start_clock) / 1e6
        committed = engine.txns.committed - committed_before
        return RunResult(
            workload=self.workload.name,
            transactions=transactions,
            sim_seconds=sim_seconds,
            throughput_tps=committed / sim_seconds if sim_seconds > 0 else 0.0,
            response_time_ms={
                name: response_sums[name] / counts[name] / 1e3 for name in counts
            },
            mix=counts,
            engine_summary=engine.stats_summary(),
        )
