"""LinkBench: Facebook's social-graph database benchmark.

Three tables (nodes / links / link counts), Zipf-skewed access, and the
published operation mix.  Two properties of the workload matter for the
paper (its Appendix A.0.3):

* payloads are small — objects average < 90 bytes, associations < 12
  bytes (half have none) — and over a third of updates change only
  numeric fields (version, timestamp);
* the remaining updates change the payload *size* only slightly.

Per the paper, LinkBench update sizes are accounted **gross** (body plus
page metadata), and the useful M values are around 100-125 bytes.
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass

from ..errors import RecordNotFoundError
from ..storage.engine import StorageEngine
from ..storage.schema import Column, Int32, Int64, Schema, VarChar
from .base import Workload
from .rand import Zipf


@dataclass
class LinkBenchConfig:
    nodes: int = 8_000
    links_per_node_mean: int = 4
    zipf_theta: float = 0.9
    node_payload_mean: int = 88
    link_payload_mean: int = 10
    #: Fraction of links carrying no payload at all (paper: "almost half").
    empty_link_payload_fraction: float = 0.45


#: Operation mix from the LinkBench paper (Armstrong et al., SIGMOD'13),
#: lightly normalized.  2.19 : 1 read-to-write ratio.
MIX = [
    ("get_link_list", 0.507),
    ("get_node", 0.129),
    ("add_link", 0.090),
    ("update_link", 0.080),
    ("update_node", 0.074),
    ("count_links", 0.049),
    ("delete_link", 0.030),
    ("add_node", 0.026),
    ("get_link", 0.019),
    ("delete_node", 0.010),
]


class LinkBench(Workload):
    """A faithful scaled-down LinkBench."""

    name = "linkbench"

    def __init__(self, config: LinkBenchConfig | None = None) -> None:
        self.config = config if config is not None else LinkBenchConfig()
        self._zipf: Zipf | None = None
        self._next_node_id = 1
        self._timestamp = 0
        #: id1 -> list of id2 with a live link (for list/pick operations).
        self._adjacency: dict[int, list[int]] = {}
        self._live_nodes: list[int] = []
        self._live_node_set: set[int] = set()

    # ------------------------------------------------------------------
    # Schema + load
    # ------------------------------------------------------------------

    def setup(self, engine: StorageEngine, rng: random.Random) -> None:
        """Create node/link/count tables and load the seed graph."""
        cfg = self.config
        # The trailing trx_id / roll_ptr columns emulate InnoDB's hidden
        # per-record transaction metadata, rewritten on every update —
        # the paper ran LinkBench under MySQL InnoDB, and this churn is
        # part of why its gross update sizes start around 20 bytes.
        self.node = engine.create_table(
            "node",
            Schema([Column("id", Int64()), Column("type", Int32()),
                    Column("version", Int64()), Column("time", Int32()),
                    Column("data", VarChar(512)),
                    Column("trx_id", Int64()), Column("roll_ptr", Int64())]),
            key=["id"],
        )
        self.link = engine.create_table(
            "link",
            Schema([Column("id1", Int64()), Column("link_type", Int64()),
                    Column("id2", Int64()), Column("visibility", Int32()),
                    Column("time", Int32()), Column("version", Int32()),
                    Column("data", VarChar(64)),
                    Column("trx_id", Int64()), Column("roll_ptr", Int64())]),
            key=["id1", "link_type", "id2"],
        )
        self.count = engine.create_table(
            "count",
            Schema([Column("id", Int64()), Column("link_type", Int64()),
                    Column("count", Int64()), Column("time", Int32()),
                    Column("version", Int64()),
                    Column("trx_id", Int64()), Column("roll_ptr", Int64())]),
            key=["id", "link_type"],
        )
        txn = engine.begin()
        for __ in range(cfg.nodes):
            self._insert_node(txn, rng)
        node_ids = list(self._live_nodes)
        for id1 in node_ids:
            fanout = rng.randint(0, cfg.links_per_node_mean * 2)
            targets = rng.sample(node_ids, min(fanout, len(node_ids)))
            inserted = 0
            for id2 in targets:
                if id2 != id1 and self._insert_link(txn, rng, id1, id2):
                    inserted += 1
            self.count.insert(
                txn, (id1, 1, inserted, self._timestamp, 0,
                      self._timestamp, rng.getrandbits(56)),
            )
        engine.commit(txn)
        self._zipf = Zipf(len(self._live_nodes), cfg.zipf_theta)

    def _node_payload(self, rng: random.Random) -> bytes:
        spread = max(1, self.config.node_payload_mean // 4)
        size = max(0, self.config.node_payload_mean + rng.randint(-spread, spread))
        return bytes(rng.randrange(32, 127) for __ in range(size))

    def _link_payload(self, rng: random.Random) -> bytes:
        if rng.random() < self.config.empty_link_payload_fraction:
            return b""
        size = rng.randint(1, self.config.link_payload_mean * 2)
        return bytes(rng.randrange(32, 127) for __ in range(size))

    def _insert_node(self, txn, rng: random.Random) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        self._timestamp += 1
        self.node.insert(
            txn,
            (node_id, 1, 1, self._timestamp, self._node_payload(rng),
             self._timestamp, rng.getrandbits(56)),
        )
        self._adjacency[node_id] = []
        self._live_nodes.append(node_id)
        self._live_node_set.add(node_id)
        return node_id

    def _insert_link(self, txn, rng: random.Random, id1: int, id2: int) -> bool:
        if id2 in self._adjacency.get(id1, ()):
            return False
        self._timestamp += 1
        self.link.insert(
            txn,
            (id1, 1, id2, 1, self._timestamp, 1, self._link_payload(rng),
             self._timestamp, rng.getrandbits(56)),
        )
        self._adjacency.setdefault(id1, []).append(id2)
        return True

    # ------------------------------------------------------------------
    # Operation mix
    # ------------------------------------------------------------------

    def _pick_node(self, rng: random.Random) -> int:
        """Zipf-skewed live node id (hot nodes are low ranks)."""
        while True:
            index = self._zipf.sample(rng)
            node_id = self._live_nodes[index % len(self._live_nodes)]
            if node_id in self._live_node_set:
                return node_id

    def transaction(self, engine: StorageEngine, rng: random.Random) -> str:
        """Draw one operation from the published LinkBench mix."""
        roll = rng.random()
        acc = 0.0
        for name, weight in MIX:
            acc += weight
            if roll < acc:
                return getattr(self, "_" + name)(engine, rng)
        return self._get_link_list(engine, rng)

    def _get_link_list(self, engine, rng) -> str:
        id1 = self._pick_node(rng)
        txn = engine.begin()
        for id2 in self._adjacency.get(id1, ())[:10]:
            with contextlib.suppress(RecordNotFoundError):
                self.link.read(self.link.lookup(id1, 1, id2))
        engine.commit(txn)
        return "get_link_list"

    def _get_node(self, engine, rng) -> str:
        txn = engine.begin()
        self.node.read(self.node.lookup(self._pick_node(rng)))
        engine.commit(txn)
        return "get_node"

    def _get_link(self, engine, rng) -> str:
        id1 = self._pick_node(rng)
        neighbours = self._adjacency.get(id1, ())
        txn = engine.begin()
        if neighbours:
            with contextlib.suppress(RecordNotFoundError):
                self.link.read(self.link.lookup(id1, 1, rng.choice(neighbours)))
        engine.commit(txn)
        return "get_link"

    def _count_links(self, engine, rng) -> str:
        txn = engine.begin()
        with contextlib.suppress(RecordNotFoundError):
            self.count.read(self.count.lookup(self._pick_node(rng), 1))
        engine.commit(txn)
        return "count_links"

    def _add_node(self, engine, rng) -> str:
        txn = engine.begin()
        self._insert_node(txn, rng)
        engine.commit(txn)
        return "add_node"

    def _update_node(self, engine, rng) -> str:
        """Version/time bump plus a payload rewrite.

        LinkBench's update operations regenerate the object payload —
        usually without changing its *size* ("over a third of all
        updates ... do not change the payload size"), sometimes growing
        or shrinking it slightly.  Either way most payload bytes
        change, which is why the paper's Figure 10 sees LinkBench
        updates in the ~100-byte gross range.
        """
        node_id = self._pick_node(rng)
        txn = engine.begin()
        rid = self.node.lookup(node_id)
        values = self.node.read(rid)
        self._timestamp += 1
        if rng.random() < 0.35:
            # Same-size rewrite: only content changes.
            payload = bytes(rng.randrange(32, 127) for __ in range(len(values[4])))
        else:
            payload = self._node_payload(rng)
        self.node.update(
            txn, rid,
            {"version": values[2] + 1, "time": self._timestamp, "data": payload,
             "trx_id": self._timestamp, "roll_ptr": rng.getrandbits(56)},
        )
        engine.commit(txn)
        return "update_node"

    def _delete_node(self, engine, rng) -> str:
        if len(self._live_nodes) < 16:
            return self._get_node(engine, rng)
        node_id = self._pick_node(rng)
        txn = engine.begin()
        self.node.delete(txn, self.node.lookup(node_id))
        for id2 in self._adjacency.pop(node_id, ()):
            with contextlib.suppress(RecordNotFoundError):
                self.link.delete(txn, self.link.lookup(node_id, 1, id2))
        engine.commit(txn)
        self._live_node_set.discard(node_id)
        return "delete_node"

    def _add_link(self, engine, rng) -> str:
        id1 = self._pick_node(rng)
        id2 = self._pick_node(rng)
        txn = engine.begin()
        added = id1 != id2 and self._insert_link(txn, rng, id1, id2)
        if added:
            self._bump_count(txn, id1, +1, rng)
        engine.commit(txn)
        return "add_link"

    def _update_link(self, engine, rng) -> str:
        id1 = self._pick_node(rng)
        neighbours = self._adjacency.get(id1, ())
        if not neighbours:
            return self._add_link(engine, rng)
        id2 = rng.choice(neighbours)
        txn = engine.begin()
        try:
            rid = self.link.lookup(id1, 1, id2)
        except RecordNotFoundError:
            engine.commit(txn)
            return "update_link"
        values = self.link.read(rid)
        self._timestamp += 1
        changes = {
            "version": values[5] + 1,
            "time": self._timestamp,
            "data": self._link_payload(rng),
            "trx_id": self._timestamp,
            "roll_ptr": rng.getrandbits(56),
        }
        self.link.update(txn, rid, changes)
        engine.commit(txn)
        return "update_link"

    def _delete_link(self, engine, rng) -> str:
        id1 = self._pick_node(rng)
        neighbours = self._adjacency.get(id1)
        if not neighbours:
            return self._get_link(engine, rng)
        id2 = neighbours[-1]
        txn = engine.begin()
        with contextlib.suppress(RecordNotFoundError):
            self.link.delete(txn, self.link.lookup(id1, 1, id2))
            neighbours.pop()
            self._bump_count(txn, id1, -1, rng)
        engine.commit(txn)
        return "delete_link"

    def _bump_count(self, txn, id1: int, delta: int, rng) -> None:
        self._timestamp += 1
        try:
            rid = self.count.lookup(id1, 1)
        except RecordNotFoundError:
            self.count.insert(
                txn, (id1, 1, max(delta, 0), self._timestamp, 0,
                      self._timestamp, rng.getrandbits(56)),
            )
            return
        values = self.count.read(rid)
        self.count.update(
            txn, rid,
            {"count": values[2] + delta, "time": self._timestamp,
             "version": values[4] + 1,
             "trx_id": self._timestamp, "roll_ptr": rng.getrandbits(56)},
        )
