"""Random distributions used by the OLTP benchmarks.

* :class:`Zipf` — the skewed access distribution of social-graph
  workloads (LinkBench) and the generic hot/cold experiments.
* :func:`nurand` — TPC-C's non-uniform random function NURand(A, x, y)
  for customer and item selection (clause 2.1.6 of the spec).
"""

from __future__ import annotations

import bisect
import random


class Zipf:
    """Zipf-distributed integers in ``[0, n)`` with parameter ``theta``.

    Uses an exact inverse-CDF table (O(n) setup, O(log n) sampling),
    which is fine at the simulator's scale and keeps sampling
    deterministic given the RNG.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    def sample(self, rng: random.Random) -> int:
        """Draw one value; rank 0 is the hottest."""
        return bisect.bisect_left(self._cdf, rng.random())


def nurand(rng: random.Random, a: int, x: int, y: int, c: int = 123) -> int:
    """TPC-C NURand(A, x, y): non-uniform random integer in ``[x, y]``."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)) + x


def uniform_except(rng: random.Random, low: int, high: int, exclude: int) -> int:
    """Uniform integer in ``[low, high]`` that is never ``exclude``."""
    if low == high:
        raise ValueError("empty choice")
    value = rng.randint(low, high - 1)
    return value + 1 if value >= exclude else value
