"""I/O trace recording and replay.

The paper's IPL-vs-IPA comparison (Section 8.3) replays recorded OLTP
traces through both simulators.  A trace is the buffer-manager-level
event stream of one engine run:

* ``FETCH lpn`` — a buffer miss read the page from storage.
* ``WRITE lpn net gross`` — a dirty page materialization with the
  number of changed tuple-data bytes (net) and changed bytes including
  page metadata (gross).  ``kind`` records what the recording engine
  actually did ("ipa"/"oop"/"skip"), but replay simulators make their
  own decisions from the sizes.

Recorders attach to a :class:`~repro.storage.engine.StorageEngine`
through its observer hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One buffer-level I/O event."""

    op: str  # "fetch" | "write"
    lpn: int
    net: int = 0
    gross: int = 0
    kind: str = ""


class TraceRecorder:
    """Collects the fetch/write event stream of an engine run."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def attach(self, engine) -> "TraceRecorder":
        """Hook into an engine's fetch and flush observers."""
        engine.fetch_observer = self.on_fetch
        engine.add_flush_observer(self.on_flush)
        return self

    def on_fetch(self, lpn: int) -> None:
        """Record one buffer-miss read."""
        self.events.append(TraceEvent("fetch", lpn))

    def on_flush(self, lpn: int, kind: str, net: int, gross: int, overflowed: bool) -> None:
        """Record one dirty-page materialization (skips are silent)."""
        if kind == "skip":
            return
        self.events.append(TraceEvent("write", lpn, net, gross, kind))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def fetches(self) -> int:
        return sum(1 for event in self.events if event.op == "fetch")

    @property
    def writes(self) -> int:
        return sum(1 for event in self.events if event.op == "write")

    def write_sizes(self, gross: bool = False) -> list[int]:
        """Changed-bytes-per-write distribution (net or gross)."""
        return [
            event.gross if gross else event.net
            for event in self.events
            if event.op == "write"
        ]


def replay(events: Iterable[TraceEvent], simulator) -> None:
    """Feed a trace into anything with ``on_fetch(lpn)`` / ``on_write(...)``."""
    for event in events:
        if event.op == "fetch":
            simulator.on_fetch(event.lpn)
        else:
            simulator.on_write(event.lpn, event.net, event.gross)


# ----------------------------------------------------------------------
# Persistence: one event per line, whitespace separated
# ----------------------------------------------------------------------

#: File format version written in the header line.
TRACE_FORMAT = "repro-trace-1"


def save_trace(events: Iterable[TraceEvent], path) -> int:
    """Write a trace file (plain text, one event per line).

    Format: a header line, then ``F <lpn>`` for fetches and
    ``W <lpn> <net> <gross> <kind>`` for writes.  Returns the number of
    events written.  The paper's Section 8.3 methodology — record live
    OLTP traces once, replay them through competing simulators — needs
    traces to outlive the recording process.
    """
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write(TRACE_FORMAT + "\n")
        for event in events:
            if event.op == "fetch":
                handle.write(f"F {event.lpn}\n")
            else:
                handle.write(
                    f"W {event.lpn} {event.net} {event.gross} {event.kind or '-'}\n"
                )
            count += 1
    return count


def load_trace(path) -> list[TraceEvent]:
    """Read a trace file written by :func:`save_trace`."""
    from ..errors import WorkloadError

    events: list[TraceEvent] = []
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().strip()
        if header != TRACE_FORMAT:
            raise WorkloadError(f"not a trace file (header {header!r})")
        for line_number, line in enumerate(handle, start=2):
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "F" and len(parts) == 2:
                events.append(TraceEvent("fetch", int(parts[1])))
            elif parts[0] == "W" and len(parts) == 5:
                kind = "" if parts[4] == "-" else parts[4]
                events.append(
                    TraceEvent("write", int(parts[1]), int(parts[2]),
                               int(parts[3]), kind)
                )
            else:
                raise WorkloadError(f"bad trace line {line_number}: {line!r}")
    return events
