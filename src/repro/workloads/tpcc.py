"""TPC-C: the order-entry OLTP benchmark.

All five transaction types with the spec's mix (NewOrder 45%, Payment
43%, OrderStatus / Delivery / StockLevel 4% each), NURand customer and
item selection, and the 1% NewOrder rollback.

The update profile the paper's Appendix A derives — the ``STOCK`` table
dominating the write behaviour because each NewOrder modifies three
numeric fields (usually only the least-significant byte each) in ~10
random stock rows — emerges from the schema and transaction code below,
not from hard-coded distributions.

Cardinalities are scaled (customers/items per the config) while keeping
the spec's ratios, skew constants and per-transaction footprints.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from ..errors import RecordNotFoundError
from ..storage.engine import StorageEngine
from ..storage.schema import Char, Column, Int32, Int64, Schema
from .base import Workload
from .rand import nurand

#: The spec's last-name syllables (clause 4.3.2.3).
_SYLLABLES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES",
              "ESE", "ANTI", "CALLY", "ATION", "EING")


def last_name(number: int) -> str:
    """C_LAST for a customer number in [0, 999]."""
    number %= 1000
    return (_SYLLABLES[number // 100]
            + _SYLLABLES[number // 10 % 10]
            + _SYLLABLES[number % 10])


@dataclass
class TPCCConfig:
    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 300
    items: int = 2000
    #: Scaled-down record paddings (real rows are wider; ratios kept).
    stock_dist_width: int = 48
    customer_data_width: int = 120
    #: Fraction of NewOrder transactions aborted by an unused item
    #: number (spec: 1%).
    rollback_fraction: float = 0.01
    #: Select customers by last name through a secondary B+-tree index
    #: for 60% of Payment and OrderStatus transactions (spec clauses
    #: 2.5.1.2 / 2.6.1.2).  Off by default: the paper's traces were
    #: recorded without it and the index adds page traffic.
    use_lastname_index: bool = False
    #: Optional table -> NoFTL region placement (selective IPA): e.g.
    #: ``{"stock": "rgIPA"}`` puts only the STOCK table into an IPA
    #: region, the paper's Section 6.2 example.  Unlisted tables land
    #: in the device's first region.
    region_map: dict | None = None


class TPCC(Workload):
    """The full five-transaction TPC-C mix."""

    name = "tpcc"

    def __init__(self, config: TPCCConfig | None = None) -> None:
        self.config = config if config is not None else TPCCConfig()
        self._timestamp = 0
        #: (w, d) -> deque of undelivered order ids.
        self._pending: dict[tuple[int, int], deque[int]] = {}
        #: (w, d, c) -> last order id, for OrderStatus.
        self._last_order: dict[tuple[int, int, int], int] = {}
        #: (w, d, o) -> ol_cnt, so line lookups need no scan.
        self._order_lines: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Schema + load
    # ------------------------------------------------------------------

    def setup(self, engine: StorageEngine, rng: random.Random) -> None:
        """Create the nine TPC-C tables (+ optional placement/index), load."""
        cfg = self.config

        def region_of(table_name):
            if cfg.region_map:
                return cfg.region_map.get(table_name)
            return None

        self.warehouse = engine.create_table(
            "warehouse",
            Schema([Column("w_id", Int32()), Column("w_ytd", Int64()),
                    Column("w_tax", Int32()), Column("w_filler", Char(60))]),
            key=["w_id"],
            region=region_of("warehouse"),
        )
        self.district = engine.create_table(
            "district",
            Schema([Column("d_id", Int32()), Column("d_w_id", Int32()),
                    Column("d_ytd", Int64()), Column("d_next_o_id", Int32()),
                    Column("d_tax", Int32()), Column("d_filler", Char(60))]),
            key=["d_w_id", "d_id"],
            region=region_of("district"),
        )
        self.customer = engine.create_table(
            "customer",
            Schema([Column("c_id", Int32()), Column("c_d_id", Int32()),
                    Column("c_w_id", Int32()), Column("c_balance", Int64()),
                    Column("c_ytd_payment", Int64()),
                    Column("c_payment_cnt", Int32()),
                    Column("c_delivery_cnt", Int32()),
                    Column("c_data", Char(cfg.customer_data_width)),
                    Column("c_last", Char(16))]),
            key=["c_w_id", "c_d_id", "c_id"],
            region=region_of("customer"),
        )
        self.item = engine.create_table(
            "item",
            Schema([Column("i_id", Int32()), Column("i_price", Int32()),
                    Column("i_name", Char(24)), Column("i_data", Char(30))]),
            key=["i_id"],
            region=region_of("item"),
        )
        self.stock = engine.create_table(
            "stock",
            Schema([Column("s_i_id", Int32()), Column("s_w_id", Int32()),
                    Column("s_quantity", Int32()), Column("s_ytd", Int32()),
                    Column("s_order_cnt", Int32()), Column("s_remote_cnt", Int32()),
                    Column("s_dist", Char(cfg.stock_dist_width)),
                    Column("s_data", Char(30))]),
            key=["s_w_id", "s_i_id"],
            region=region_of("stock"),
        )
        self.orders = engine.create_table(
            "orders",
            Schema([Column("o_id", Int32()), Column("o_d_id", Int32()),
                    Column("o_w_id", Int32()), Column("o_c_id", Int32()),
                    Column("o_carrier_id", Int32()), Column("o_ol_cnt", Int32()),
                    Column("o_entry_d", Int64())]),
            key=["o_w_id", "o_d_id", "o_id"],
            region=region_of("orders"),
        )
        self.new_order = engine.create_table(
            "new_order",
            Schema([Column("no_o_id", Int32()), Column("no_d_id", Int32()),
                    Column("no_w_id", Int32())]),
            key=["no_w_id", "no_d_id", "no_o_id"],
            region=region_of("new_order"),
        )
        self.order_line = engine.create_table(
            "order_line",
            Schema([Column("ol_o_id", Int32()), Column("ol_d_id", Int32()),
                    Column("ol_w_id", Int32()), Column("ol_number", Int32()),
                    Column("ol_i_id", Int32()), Column("ol_supply_w_id", Int32()),
                    Column("ol_quantity", Int32()), Column("ol_amount", Int64()),
                    Column("ol_delivery_d", Int64()),
                    Column("ol_dist_info", Char(24))]),
            key=["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
            region=region_of("order_line"),
        )
        self.history = engine.create_table(
            "history",
            Schema([Column("h_c_id", Int32()), Column("h_d_id", Int32()),
                    Column("h_w_id", Int32()), Column("h_amount", Int64()),
                    Column("h_date", Int64()), Column("h_data", Char(24))]),
            region=region_of("history"),
        )
        self._load(engine, rng)

    def _load(self, engine: StorageEngine, rng: random.Random) -> None:
        cfg = self.config
        txn = engine.begin()
        for i in range(1, cfg.items + 1):
            self.item.insert(txn, (i, rng.randint(100, 10_000), "item", "data"))
        for w in range(1, cfg.warehouses + 1):
            self.warehouse.insert(txn, (w, 0, rng.randint(0, 2000), "w"))
            for i in range(1, cfg.items + 1):
                self.stock.insert(
                    txn, (i, w, rng.randint(10, 100), 0, 0, 0, "d", "s")
                )
            for d in range(1, cfg.districts_per_warehouse + 1):
                self.district.insert(txn, (d, w, 0, 1, rng.randint(0, 2000), "d"))
                self._pending[(w, d)] = deque()
                for c in range(1, cfg.customers_per_district + 1):
                    self.customer.insert(
                        txn, (c, d, w, 0, 0, 0, 0, "cust", last_name(c - 1))
                    )
        engine.commit(txn)
        if cfg.use_lastname_index:
            self.lastname_index = engine.create_index(
                "idx_c_last", "customer", ["c_w_id", "c_d_id", "c_last"]
            )
        else:
            self.lastname_index = None

    # ------------------------------------------------------------------
    # Mix
    # ------------------------------------------------------------------

    def transaction(self, engine: StorageEngine, rng: random.Random) -> str:
        """Draw one transaction from the spec's 45/43/4/4/4 mix."""
        roll = rng.random()
        if roll < 0.45:
            return self._new_order(engine, rng)
        if roll < 0.88:
            return self._payment(engine, rng)
        if roll < 0.92:
            return self._order_status(engine, rng)
        if roll < 0.96:
            return self._delivery(engine, rng)
        return self._stock_level(engine, rng)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _pick_warehouse(self, rng: random.Random) -> int:
        return rng.randint(1, self.config.warehouses)

    def _pick_customer(self, rng: random.Random) -> int:
        return nurand(rng, 1023, 1, self.config.customers_per_district)

    def _pick_item(self, rng: random.Random) -> int:
        return nurand(rng, 8191, 1, self.config.items)

    def _select_customer(self, rng: random.Random, w: int, d: int):
        """Customer RID by id (40%) or by last name (60%, spec 2.5.1.2).

        By-last-name resolution walks the secondary index and takes the
        middle match, as the spec prescribes; without the index every
        selection is by id (the paper's Shore-MT setup).
        """
        cfg = self.config
        if self.lastname_index is not None and rng.random() < 0.60:
            name = last_name(nurand(rng, 255, 0, 999))
            rids = self.lastname_index.search(w, d, name)
            if rids:
                return rids[len(rids) // 2]
        return self.customer.lookup(w, d, self._pick_customer(rng))

    def _new_order(self, engine: StorageEngine, rng: random.Random) -> str:
        cfg = self.config
        w = self._pick_warehouse(rng)
        d = rng.randint(1, cfg.districts_per_warehouse)
        c = self._pick_customer(rng)
        ol_cnt = rng.randint(5, 15)
        rollback = rng.random() < cfg.rollback_fraction
        self._timestamp += 1

        txn = engine.begin()
        self.warehouse.read(self.warehouse.lookup(w))
        district_rid = self.district.lookup(w, d)
        district = self.district.read(district_rid)
        o_id = district[3]
        self.district.update(txn, district_rid, {"d_next_o_id": o_id + 1})
        self.customer.read(self.customer.lookup(w, d, c))
        self.orders.insert(txn, (o_id, d, w, c, 0, ol_cnt, self._timestamp))
        self.new_order.insert(txn, (o_id, d, w))
        for number in range(1, ol_cnt + 1):
            item_id = self._pick_item(rng)
            if rollback and number == ol_cnt:
                engine.abort(txn)  # unused item number: spec's 1% rollback
                return "new_order_rollback"
            supply_w = w
            if cfg.warehouses > 1 and rng.random() < 0.01:
                supply_w = rng.randint(1, cfg.warehouses)
            item = self.item.read(self.item.lookup(item_id))
            stock_rid = self.stock.lookup(supply_w, item_id)
            stock = self.stock.read(stock_rid)
            quantity = rng.randint(1, 10)
            new_quantity = stock[2] - quantity
            if new_quantity < 10:
                new_quantity += 91
            changes = {
                "s_quantity": new_quantity,
                "s_ytd": stock[3] + quantity,
            }
            if supply_w == w:
                changes["s_order_cnt"] = stock[4] + 1
            else:
                changes["s_remote_cnt"] = stock[5] + 1
            self.stock.update(txn, stock_rid, changes)
            amount = quantity * item[1]
            self.order_line.insert(
                txn, (o_id, d, w, number, item_id, supply_w, quantity, amount, 0, "di")
            )
        engine.commit(txn)
        self._pending[(w, d)].append(o_id)
        self._last_order[(w, d, c)] = o_id
        self._order_lines[(w, d, o_id)] = ol_cnt
        return "new_order"

    def _payment(self, engine: StorageEngine, rng: random.Random) -> str:
        cfg = self.config
        w = self._pick_warehouse(rng)
        d = rng.randint(1, cfg.districts_per_warehouse)
        # 85% home customer, 15% remote (spec 2.5.1.2).
        if cfg.warehouses > 1 and rng.random() >= 0.85:
            c_w = rng.randint(1, cfg.warehouses)
            c_d = rng.randint(1, cfg.districts_per_warehouse)
        else:
            c_w, c_d = w, d
        amount = rng.randint(100, 500_000)
        self._timestamp += 1

        txn = engine.begin()
        customer_rid = self._select_customer(rng, c_w, c_d)
        warehouse_rid = self.warehouse.lookup(w)
        w_ytd = self.warehouse.read(warehouse_rid)[1]
        self.warehouse.update(txn, warehouse_rid, {"w_ytd": w_ytd + amount})
        district_rid = self.district.lookup(w, d)
        d_ytd = self.district.read(district_rid)[2]
        self.district.update(txn, district_rid, {"d_ytd": d_ytd + amount})
        customer = self.customer.read(customer_rid)
        c = customer[0]
        changes = {
            "c_balance": customer[3] - amount,
            "c_ytd_payment": customer[4] + amount,
            "c_payment_cnt": customer[5] + 1,
        }
        if rng.random() < 0.10:
            # Bad credit: rewrite c_data (a large update, spec 2.5.3.3).
            changes["c_data"] = f"bc-{c}-{w}-{d}-{amount}-{self._timestamp}"
        self.customer.update(txn, customer_rid, changes)
        self.history.insert(txn, (c, c_d, c_w, amount, self._timestamp, "hist"))
        engine.commit(txn)
        return "payment"

    def _order_status(self, engine: StorageEngine, rng: random.Random) -> str:
        cfg = self.config
        w = self._pick_warehouse(rng)
        d = rng.randint(1, cfg.districts_per_warehouse)
        txn = engine.begin()
        customer_rid = self._select_customer(rng, w, d)
        c = self.customer.read(customer_rid)[0]
        o_id = self._last_order.get((w, d, c))
        if o_id is not None:
            self.orders.read(self.orders.lookup(w, d, o_id))
            for number in range(1, self._order_lines.get((w, d, o_id), 0) + 1):
                self.order_line.read(self.order_line.lookup(w, d, o_id, number))
        engine.commit(txn)
        return "order_status"

    def _delivery(self, engine: StorageEngine, rng: random.Random) -> str:
        cfg = self.config
        w = self._pick_warehouse(rng)
        carrier = rng.randint(1, 10)
        self._timestamp += 1
        txn = engine.begin()
        for d in range(1, cfg.districts_per_warehouse + 1):
            pending = self._pending[(w, d)]
            if not pending:
                continue
            o_id = pending.popleft()
            try:
                no_rid = self.new_order.lookup(w, d, o_id)
            except RecordNotFoundError:
                continue
            self.new_order.delete(txn, no_rid)
            order_rid = self.orders.lookup(w, d, o_id)
            order = self.orders.read(order_rid)
            self.orders.update(txn, order_rid, {"o_carrier_id": carrier})
            total = 0
            for number in range(1, order[5] + 1):
                line_rid = self.order_line.lookup(w, d, o_id, number)
                line = self.order_line.read(line_rid)
                total += line[7]
                self.order_line.update(
                    txn, line_rid, {"ol_delivery_d": self._timestamp}
                )
            customer_rid = self.customer.lookup(w, d, order[3])
            customer = self.customer.read(customer_rid)
            self.customer.update(
                txn,
                customer_rid,
                {"c_balance": customer[3] + total,
                 "c_delivery_cnt": customer[6] + 1},
            )
        engine.commit(txn)
        return "delivery"

    def _stock_level(self, engine: StorageEngine, rng: random.Random) -> str:
        cfg = self.config
        w = self._pick_warehouse(rng)
        d = rng.randint(1, cfg.districts_per_warehouse)
        threshold = rng.randint(10, 20)
        txn = engine.begin()
        district = self.district.read(self.district.lookup(w, d))
        next_o_id = district[3]
        low = 0
        for o_id in range(max(1, next_o_id - 20), next_o_id):
            count = self._order_lines.get((w, d, o_id))
            if count is None:
                continue
            for number in range(1, count + 1):
                line = self.order_line.read(self.order_line.lookup(w, d, o_id, number))
                stock = self.stock.read(self.stock.lookup(w, line[4]))
                if stock[2] < threshold:
                    low += 1
        engine.commit(txn)
        return "stock_level"
