"""Client session adapters: per-client operation streams for load tests.

The OLTP generators in this package drive a :class:`StorageEngine`
synchronously; the host-queueing experiments (:mod:`repro.hostq`) need
something different — N *concurrent* clients, each emitting a stream of
device-level operations shaped like a workload (read/update mix, hot-set
skew, delta sizes, commit cadence) that the scheduler can interleave.

A :class:`ClientSession` is that stream: a deterministic generator of
``(kind, lpn, length)`` tuples, parameterized by a
:class:`SessionProfile` whose presets in :data:`PROFILES` mirror the
repository's benchmark workloads.  Kinds are plain strings (``"read"``,
``"write"``, ``"delta"``, ``"commit"``) so this module stays independent
of the hostq request types; hostq maps them onto its own enum.

Determinism: every session draws from its own ``random.Random`` seeded
from ``(seed, client)``, so runs are reproducible regardless of how the
scheduler interleaves clients.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .rand import Zipf

__all__ = ["SessionProfile", "ClientSession", "PROFILES"]


@dataclass(frozen=True)
class SessionProfile:
    """Shape of one client's operation stream.

    ``read_fraction`` of non-commit operations are reads; among the
    updates, ``delta_fraction`` are attempted as delta appends of
    ``delta_bytes`` (the rest are full-page rewrites).  Accesses hit a
    hot set of ``hot_fraction`` of the pages with probability
    ``hot_access_fraction`` (Zipf-skewed inside the hot set).  Every
    ``ops_per_txn`` device operations the client emits a ``commit``
    (0 disables commits — a raw I/O stream).
    """

    name: str
    read_fraction: float
    delta_fraction: float
    delta_bytes: int
    hot_fraction: float = 0.2
    hot_access_fraction: float = 0.8
    ops_per_txn: int = 0
    #: Erased tail (bytes) full-page writes leave for future appends;
    #: the executor's delta cursor walks this area.
    delta_area_bytes: int = 512
    #: Fraction of transactions that deliberately roll back instead of
    #: committing (transaction-level load tests only; the device-level
    #: request stream has no transaction boundary to roll back to).
    rollback_fraction: float = 0.0


#: Session presets mirroring the benchmark workloads' update profiles:
#: TPC-B's tiny balance increments, TPC-C's mixed sizes, TATP's
#: read-dominated tiny updates, LinkBench's large gross updates.
PROFILES: dict[str, SessionProfile] = {
    "uniform": SessionProfile(
        "uniform", read_fraction=0.50, delta_fraction=0.50, delta_bytes=16,
        hot_fraction=1.0, hot_access_fraction=1.0, ops_per_txn=0,
    ),
    "tpcb": SessionProfile(
        "tpcb", read_fraction=0.45, delta_fraction=0.80, delta_bytes=8,
        hot_fraction=0.10, hot_access_fraction=0.90, ops_per_txn=4,
    ),
    "tpcc": SessionProfile(
        "tpcc", read_fraction=0.55, delta_fraction=0.70, delta_bytes=24,
        hot_fraction=0.20, hot_access_fraction=0.80, ops_per_txn=10,
        rollback_fraction=0.01,
    ),
    "tatp": SessionProfile(
        "tatp", read_fraction=0.80, delta_fraction=0.90, delta_bytes=8,
        hot_fraction=0.10, hot_access_fraction=0.90, ops_per_txn=2,
    ),
    "linkbench": SessionProfile(
        "linkbench", read_fraction=0.50, delta_fraction=0.60, delta_bytes=96,
        hot_fraction=0.25, hot_access_fraction=0.80, ops_per_txn=6,
    ),
}


class ClientSession:
    """One client's endless, deterministic operation stream."""

    def __init__(
        self,
        profile: SessionProfile,
        logical_pages: int,
        seed: int = 7,
        client: int = 0,
    ) -> None:
        if logical_pages < 1:
            raise ValueError("a session needs at least one logical page")
        self.profile = profile
        self.logical_pages = logical_pages
        self.client = client
        self._rng = random.Random(seed * 1_000_003 + client + 1)
        hot_pages = max(1, int(logical_pages * profile.hot_fraction))
        self._hot_pages = min(hot_pages, logical_pages)
        self._hot_zipf = Zipf(self._hot_pages, theta=0.99)
        self._since_commit = 0
        self.generated = 0

    def _pick_lpn(self) -> int:
        if (
            self._hot_pages < self.logical_pages
            and self._rng.random() >= self.profile.hot_access_fraction
        ):
            # Cold miss: uniform over the pages outside the hot set.
            return self._rng.randrange(self._hot_pages, self.logical_pages)
        return self._hot_zipf.sample(self._rng)

    def next_op(self) -> tuple[str, int, int]:
        """The client's next operation: ``(kind, lpn, length)``.

        ``lpn`` is -1 and ``length`` 0 for commits; delta operations
        carry the profile's delta size, reads/writes a length of 0
        (whole page).
        """
        profile = self.profile
        if profile.ops_per_txn and self._since_commit >= profile.ops_per_txn:
            self._since_commit = 0
            self.generated += 1
            return ("commit", -1, 0)
        self._since_commit += 1
        self.generated += 1
        lpn = self._pick_lpn()
        if self._rng.random() < profile.read_fraction:
            return ("read", lpn, 0)
        if self._rng.random() < profile.delta_fraction:
            return ("delta", lpn, profile.delta_bytes)
        return ("write", lpn, 0)
