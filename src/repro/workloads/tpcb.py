"""TPC-B: the classic bank-transaction benchmark.

One transaction type, ``Account_Update``: a deposit/withdrawal that
updates one numeric balance in each of ``ACCOUNT``, ``TELLER`` and
``BRANCH`` and appends a row to ``HISTORY``.  The paper's Appendix A
analysis of the resulting write behaviour — 50-90% of update I/Os
changing exactly 4 bytes of net data per page, driven by the randomly
accessed ``ACCOUNT`` table — is what this module reproduces.

Cardinalities follow the spec's 1 : 10 : 100000 branch/teller/account
ratio, with ``accounts_per_branch`` scaled down so the simulated DB
stays laptop-sized; the access pattern and per-transaction footprint
(what the update-size CDF depends on) are unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..storage.engine import StorageEngine
from ..storage.schema import Char, Column, Int32, Int64, Schema
from .base import Workload


@dataclass
class TPCBConfig:
    branches: int = 1
    tellers_per_branch: int = 10
    accounts_per_branch: int = 20_000
    #: Filler pads records to realistic NSM widths (TPC-B mandates
    #: ~100-byte rows).
    filler_width: int = 80
    history_filler_width: int = 22


class TPCB(Workload):
    """The TPC-B Account_Update workload."""

    name = "tpcb"

    def __init__(self, config: TPCBConfig | None = None) -> None:
        self.config = config if config is not None else TPCBConfig()
        self.branch = None
        self.teller = None
        self.account = None
        self.history = None
        self._timestamp = 0

    # ------------------------------------------------------------------
    # Schema + load
    # ------------------------------------------------------------------

    def setup(self, engine: StorageEngine, rng: random.Random) -> None:
        """Create the four TPC-B tables and load the scaled bank."""
        cfg = self.config
        filler = Char(cfg.filler_width)
        self.branch = engine.create_table(
            "branch",
            Schema([Column("b_id", Int32()), Column("b_balance", Int64()),
                    Column("b_filler", filler)]),
            key=["b_id"],
        )
        self.teller = engine.create_table(
            "teller",
            Schema([Column("t_id", Int32()), Column("t_b_id", Int32()),
                    Column("t_balance", Int64()), Column("t_filler", filler)]),
            key=["t_id"],
        )
        self.account = engine.create_table(
            "account",
            Schema([Column("a_id", Int32()), Column("a_b_id", Int32()),
                    Column("a_balance", Int64()), Column("a_filler", filler)]),
            key=["a_id"],
        )
        self.history = engine.create_table(
            "history",
            Schema([Column("h_t_id", Int32()), Column("h_b_id", Int32()),
                    Column("h_a_id", Int32()), Column("h_delta", Int64()),
                    Column("h_time", Int64()),
                    Column("h_filler", Char(cfg.history_filler_width))]),
        )
        txn = engine.begin()
        pad = "x"
        for b in range(cfg.branches):
            self.branch.insert(txn, (b, 0, pad))
        for b in range(cfg.branches):
            for t in range(cfg.tellers_per_branch):
                self.teller.insert(txn, (b * cfg.tellers_per_branch + t, b, 0, pad))
        for b in range(cfg.branches):
            for a in range(cfg.accounts_per_branch):
                self.account.insert(
                    txn, (b * cfg.accounts_per_branch + a, b, 10_000, pad)
                )
        engine.commit(txn)

    # ------------------------------------------------------------------
    # Transaction
    # ------------------------------------------------------------------

    @property
    def total_accounts(self) -> int:
        return self.config.branches * self.config.accounts_per_branch

    @property
    def total_tellers(self) -> int:
        return self.config.branches * self.config.tellers_per_branch

    def transaction(self, engine: StorageEngine, rng: random.Random) -> str:
        """Account_Update: the benchmark's single transaction profile."""
        cfg = self.config
        teller_id = rng.randrange(self.total_tellers)
        branch_id = teller_id // cfg.tellers_per_branch
        # 85% of accounts belong to the home branch (spec clause 5.3.5);
        # with one branch everything is local.
        if cfg.branches > 1 and rng.random() >= 0.85:
            remote = rng.randrange(cfg.branches - 1)
            if remote >= branch_id:
                remote += 1
            account_branch = remote
        else:
            account_branch = branch_id
        account_id = (
            account_branch * cfg.accounts_per_branch
            + rng.randrange(cfg.accounts_per_branch)
        )
        delta = rng.randint(-99_999, 99_999)
        self._timestamp += 1

        txn = engine.begin()
        account_rid = self.account.lookup(account_id)
        balance = self.account.read(account_rid)[2]
        self.account.update(txn, account_rid, {"a_balance": balance + delta})
        teller_rid = self.teller.lookup(teller_id)
        teller_balance = self.teller.read(teller_rid)[2]
        self.teller.update(txn, teller_rid, {"t_balance": teller_balance + delta})
        branch_rid = self.branch.lookup(branch_id)
        branch_balance = self.branch.read(branch_rid)[1]
        self.branch.update(txn, branch_rid, {"b_balance": branch_balance + delta})
        self.history.insert(
            txn, (teller_id, branch_id, account_id, delta, self._timestamp, "h")
        )
        engine.commit(txn)
        return "account_update"
